// The batched write path must be simulation-equivalent to the per-request
// path: same wear transitions, same health trajectory, same simulated time,
// same FTL statistics, for the same seed. These tests run the two paths side
// by side — at the FTL layer (WriteBatch vs a WritePage loop, including the
// wear-out death spiral) and at the experiment layer (WearOutExperiment with
// batch_requests > 1) — and require bit-identical results.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "src/device/catalog.h"
#include "src/ftl/hybrid_ftl.h"
#include "src/ftl/page_map_ftl.h"
#include "src/simcore/rng.h"
#include "src/simcore/units.h"
#include "src/wearlab/wearout_experiment.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

void ExpectStatsEqual(const FtlStats& a, const FtlStats& b) {
  EXPECT_EQ(a.host_pages_written, b.host_pages_written);
  EXPECT_EQ(a.nand_pages_written, b.nand_pages_written);
  EXPECT_EQ(a.gc_pages_migrated, b.gc_pages_migrated);
  EXPECT_EQ(a.erases, b.erases);
  EXPECT_EQ(a.free_blocks, b.free_blocks);
  EXPECT_EQ(a.valid_pages, b.valid_pages);
}

void ExpectHealthEqual(const HealthReport& a, const HealthReport& b) {
  EXPECT_EQ(a.life_time_est_a, b.life_time_est_a);
  EXPECT_EQ(a.life_time_est_b, b.life_time_est_b);
  EXPECT_EQ(a.pre_eol, b.pre_eol);
  EXPECT_DOUBLE_EQ(a.avg_pe_a, b.avg_pe_a);
  EXPECT_DOUBLE_EQ(a.avg_pe_b, b.avg_pe_b);
}

void ExpectTransitionsEqual(const WearRunOutcome& a, const WearRunOutcome& b) {
  ASSERT_EQ(a.transitions.size(), b.transitions.size());
  for (size_t i = 0; i < a.transitions.size(); ++i) {
    const WearTransition& ta = a.transitions[i];
    const WearTransition& tb = b.transitions[i];
    EXPECT_EQ(ta.type, tb.type) << "row " << i;
    EXPECT_EQ(ta.from_level, tb.from_level) << "row " << i;
    EXPECT_EQ(ta.to_level, tb.to_level) << "row " << i;
    EXPECT_EQ(ta.host_bytes, tb.host_bytes) << "row " << i;
    EXPECT_DOUBLE_EQ(ta.hours, tb.hours) << "row " << i;
    EXPECT_DOUBLE_EQ(ta.write_amplification, tb.write_amplification) << "row " << i;
    EXPECT_DOUBLE_EQ(ta.utilization, tb.utilization) << "row " << i;
  }
  EXPECT_EQ(a.bricked, b.bricked);
  EXPECT_EQ(a.volume_cap_hit, b.volume_cap_hit);
  EXPECT_EQ(a.status.code(), b.status.code());
  EXPECT_EQ(a.total_host_bytes, b.total_host_bytes);
  EXPECT_DOUBLE_EQ(a.total_hours, b.total_hours);
}

// Drives an FTL with the same pseudo-random LPN sequence through WritePage
// (reference) and WriteBatch (under test), comparing per-page times, stats,
// and health after every chunk, all the way into wear-out failure.
template <typename MakeFtl>
void RunFtlLevelComparison(MakeFtl make_ftl, size_t chunk) {
  std::unique_ptr<FtlInterface> ref = make_ftl();
  std::unique_ptr<FtlInterface> bat = make_ftl();
  const uint64_t logical = ref->LogicalPageCount();

  Rng lpn_rng(1234);
  std::vector<uint64_t> lpns(chunk);
  std::vector<SimDuration> times(chunk);
  bool died = false;
  for (int iter = 0; iter < 200000 && !died; ++iter) {
    for (size_t i = 0; i < chunk; ++i) {
      lpns[i] = lpn_rng.UniformU64(logical);
    }

    // Reference: one page at a time.
    std::vector<SimDuration> ref_times;
    Status ref_status = Status::Ok();
    for (size_t i = 0; i < chunk; ++i) {
      Result<SimDuration> one = ref->WritePage(lpns[i]);
      if (!one.ok()) {
        ref_status = one.status();
        break;
      }
      ref_times.push_back(one.value());
    }

    // Under test: one bulk call.
    size_t done = 0;
    const Status bat_status = bat->WriteBatch(lpns.data(), chunk, times.data(), &done);

    ASSERT_EQ(done, ref_times.size()) << "iter " << iter;
    ASSERT_EQ(bat_status.code(), ref_status.code()) << "iter " << iter;
    for (size_t i = 0; i < done; ++i) {
      ASSERT_EQ(times[i].nanos(), ref_times[i].nanos())
          << "iter " << iter << " page " << i;
    }
    ExpectStatsEqual(ref->Stats(), bat->Stats());
    ExpectHealthEqual(ref->Health(), bat->Health());
    ASSERT_EQ(ref->IsReadOnly(), bat->IsReadOnly()) << "iter " << iter;
    died = !ref_status.ok() && ref_status.code() == StatusCode::kUnavailable;
  }
  // The tiny configs are rated for a few hundred P/E cycles, so the loop
  // must have reached wear-out — the batch path's retire/retry handling is
  // exercised, not just the happy path.
  EXPECT_TRUE(died);
}

TEST(BatchEquivalenceTest, PageMapWriteBatchMatchesWritePageLoopToDeath) {
  RunFtlLevelComparison([] { return MakeTinyFtl(/*seed=*/5); }, /*chunk=*/64);
}

TEST(BatchEquivalenceTest, PageMapWriteBatchMatchesWithOddChunks) {
  // Chunk not a divisor of pages-per-block: runs straddle block boundaries.
  RunFtlLevelComparison([] { return MakeTinyFtl(/*seed=*/6); }, /*chunk=*/37);
}

TEST(BatchEquivalenceTest, HybridWriteBatchMatchesWritePageLoopToDeath) {
  RunFtlLevelComparison([] { return MakeTinyHybrid(/*seed=*/5); }, /*chunk=*/64);
}

TEST(BatchEquivalenceTest, WriteBatchHandlesDuplicateLpnsInOneBatch) {
  auto ref = MakeTinyFtl(/*seed=*/9);
  auto bat = MakeTinyFtl(/*seed=*/9);
  // Every batch rewrites the same few LPNs repeatedly — later entries must
  // supersede earlier ones within a single WriteBatch call.
  std::vector<uint64_t> lpns;
  for (int i = 0; i < 96; ++i) {
    lpns.push_back(i % 3);
  }
  std::vector<SimDuration> times(lpns.size());
  for (int iter = 0; iter < 50; ++iter) {
    for (uint64_t lpn : lpns) {
      ASSERT_TRUE(ref->WritePage(lpn).ok());
    }
    size_t done = 0;
    ASSERT_TRUE(bat->WriteBatch(lpns.data(), lpns.size(), times.data(), &done).ok());
    ASSERT_EQ(done, lpns.size());
  }
  ExpectStatsEqual(ref->Stats(), bat->Stats());
  ASSERT_TRUE(static_cast<PageMapFtl*>(bat.get())->ValidateInvariants().ok());
}

TEST(BatchEquivalenceTest, InvariantsHoldAfterBatchedRuns) {
  auto ftl = MakeTinyFtl(/*seed=*/21);
  Rng rng(7);
  std::vector<uint64_t> lpns(64);
  std::vector<SimDuration> times(64);
  for (int iter = 0; iter < 500; ++iter) {
    for (auto& lpn : lpns) {
      lpn = rng.UniformU64(ftl->LogicalPageCount());
    }
    size_t done = 0;
    const Status st = ftl->WriteBatch(lpns.data(), lpns.size(), times.data(), &done);
    ASSERT_TRUE(ftl->ValidateInvariants().ok()) << "iter " << iter;
    if (!st.ok()) {
      break;
    }
  }
}

// Differential crash test: a power cut at the same destructive-op index must
// leave the per-page path and the batch path in bit-identical post-recovery
// states. Destructive-op counting is path-independent by design (precondition
// checks run before the rail hook, so only committable programs/erases
// count), which is what makes a (seed, cut) repro portable across paths.
template <typename MakeFtl>
void RunCrashCutComparison(MakeFtl make_ftl, uint64_t cut_op, uint64_t seed) {
  std::unique_ptr<FtlInterface> ref = make_ftl();
  std::unique_ptr<FtlInterface> bat = make_ftl();
  PowerRail rail_ref;
  PowerRail rail_bat;
  ref->AttachPowerRail(&rail_ref);
  bat->AttachPowerRail(&rail_bat);
  rail_ref.Arm(FaultPlan::AtOpCount(cut_op));
  rail_bat.Arm(FaultPlan::AtOpCount(cut_op));

  const uint64_t logical = ref->LogicalPageCount();
  constexpr size_t kChunk = 64;
  Rng lpn_rng(seed);
  std::vector<uint64_t> lpns(kChunk);
  std::vector<SimDuration> times(kChunk);
  bool cut = false;
  for (int iter = 0; iter < 500 && !cut; ++iter) {
    for (size_t i = 0; i < kChunk; ++i) {
      lpns[i] = lpn_rng.UniformU64(logical);
    }
    size_t ref_done = 0;
    Status ref_status = Status::Ok();
    for (size_t i = 0; i < kChunk; ++i) {
      Result<SimDuration> one = ref->WritePage(lpns[i]);
      if (!one.ok()) {
        ref_status = one.status();
        break;
      }
      ++ref_done;
    }
    size_t bat_done = 0;
    const Status bat_status = bat->WriteBatch(lpns.data(), kChunk, times.data(), &bat_done);
    ASSERT_EQ(bat_done, ref_done) << "iter " << iter;
    ASSERT_EQ(bat_status.code(), ref_status.code()) << "iter " << iter;
    cut = ref_status.code() == StatusCode::kPowerLoss;
  }
  ASSERT_TRUE(cut) << "cut never fired; widen the write loop";
  EXPECT_EQ(rail_ref.destructive_ops(), rail_bat.destructive_ops());

  rail_ref.Restore();
  rail_bat.Restore();
  Result<RecoveryReport> rep_ref = ref->Mount();
  Result<RecoveryReport> rep_bat = bat->Mount();
  ASSERT_TRUE(rep_ref.ok());
  ASSERT_TRUE(rep_bat.ok());
  EXPECT_EQ(rep_ref.value().scanned_pages, rep_bat.value().scanned_pages);
  EXPECT_EQ(rep_ref.value().torn_pages_discarded, rep_bat.value().torn_pages_discarded);
  EXPECT_EQ(rep_ref.value().stale_pages_ignored, rep_bat.value().stale_pages_ignored);
  EXPECT_EQ(rep_ref.value().mapped_pages_recovered, rep_bat.value().mapped_pages_recovered);
  ExpectStatsEqual(ref->Stats(), bat->Stats());
  ExpectHealthEqual(ref->Health(), bat->Health());
  EXPECT_TRUE(ref->ValidateInvariants().ok());
  EXPECT_TRUE(bat->ValidateInvariants().ok());
  // Per-LPN recovered mapping: a page is readable on one path iff it is
  // readable on the other.
  for (uint64_t lpn = 0; lpn < logical; ++lpn) {
    EXPECT_EQ(ref->ReadPage(lpn).ok(), bat->ReadPage(lpn).ok()) << "lpn " << lpn;
  }
}

TEST(BatchEquivalenceTest, PageMapIdenticalCutIdenticalRecovery) {
  for (const uint64_t cut : {1ull, 50ull, 700ull, 2500ull}) {
    RunCrashCutComparison([] { return MakeTinyFtl(/*seed=*/31); }, cut,
                          /*seed=*/4100 + cut);
  }
}

TEST(BatchEquivalenceTest, HybridIdenticalCutIdenticalRecovery) {
  for (const uint64_t cut : {1ull, 50ull, 700ull, 2500ull}) {
    RunCrashCutComparison([] { return MakeTinyHybrid(/*seed=*/31); }, cut,
                          /*seed=*/4200 + cut);
  }
}

// Same property through the whole device: byte-addressed requests submitted
// one at a time vs through SubmitBatch, same cut, identical recovery.
TEST(BatchEquivalenceTest, DeviceSubmitBatchIdenticalCutIdenticalRecovery) {
  auto drive = [](bool batched) {
    auto device = MakeTinyDevice(/*seed=*/17);
    PowerRail rail;
    rail.AttachClock(&device->clock());
    device->AttachPowerRail(&rail);
    rail.Arm(FaultPlan::AtOpCount(900));
    Rng rng(606);
    std::vector<IoRequest> reqs(32);
    bool cut = false;
    for (int iter = 0; iter < 200 && !cut; ++iter) {
      for (IoRequest& req : reqs) {
        req.kind = IoKind::kWrite;
        req.offset = rng.UniformU64(device->CapacityBytes() / 4096) * 4096;
        req.length = 4096 * (1 + rng.UniformU64(4));
        req.offset = std::min(req.offset, device->CapacityBytes() - req.length);
      }
      if (batched) {
        const BatchCompletion done = device->SubmitBatch(reqs.data(), reqs.size());
        cut = done.status.code() == StatusCode::kPowerLoss;
      } else {
        for (const IoRequest& req : reqs) {
          Result<IoCompletion> done = device->Submit(req);
          if (!done.ok()) {
            cut = done.status().code() == StatusCode::kPowerLoss;
            break;
          }
        }
      }
    }
    EXPECT_TRUE(cut);
    rail.Restore();
    Result<RecoveryReport> rep = device->Remount();
    EXPECT_TRUE(rep.ok());
    EXPECT_TRUE(device->mutable_ftl().ValidateInvariants().ok());
    return std::make_tuple(device->ftl().Stats(), device->QueryHealth(),
                           rep.ok() ? rep.value().mapped_pages_recovered : 0);
  };
  auto [stats_one, health_one, mapped_one] = drive(false);
  auto [stats_bat, health_bat, mapped_bat] = drive(true);
  ExpectStatsEqual(stats_one, stats_bat);
  ExpectHealthEqual(health_one, health_bat);
  EXPECT_EQ(mapped_one, mapped_bat);
}

// Experiment-level equivalence on a single-pool eMMC: identical Table 1 rows,
// totals, clock, and device stats whether requests are submitted one at a
// time or 64 per batch.
TEST(BatchEquivalenceTest, PageMapExperimentMatchesPerRequest) {
  auto run = [](uint64_t batch) {
    auto device = MakeEmmc8(SimScale{64, 64}, /*seed=*/3);
    WearWorkloadConfig w;
    w.footprint_bytes = 8 * kMiB;
    w.batch_requests = batch;
    WearOutExperiment exp(*device, w);
    EXPECT_TRUE(exp.SetUtilization(0.4).ok());
    WearRunOutcome out = exp.Run(4, 64 * kGiB);
    return std::make_tuple(std::move(out), device->ftl().Stats(),
                           device->QueryHealth(), device->HostBytesWritten(),
                           device->clock().Now().nanos());
  };
  auto [out1, stats1, health1, bytes1, now1] = run(1);
  auto [out64, stats64, health64, bytes64, now64] = run(64);
  ExpectTransitionsEqual(out1, out64);
  ExpectStatsEqual(stats1, stats64);
  ExpectHealthEqual(health1, health64);
  EXPECT_EQ(bytes1, bytes64);
  EXPECT_EQ(now1, now64);
}

// Same at the other FTL: the hybrid (SLC cache + MLC pool) eMMC 16 GB, whose
// Type A / Type B indicators advance independently.
TEST(BatchEquivalenceTest, HybridExperimentMatchesPerRequest) {
  auto run = [](uint64_t batch) {
    auto device = MakeEmmc16(SimScale{256, 256}, /*seed=*/3);
    WearWorkloadConfig w;
    w.footprint_bytes = 4 * kMiB;
    w.batch_requests = batch;
    WearOutExperiment exp(*device, w);
    WearRunOutcome out = exp.Run(3, 64 * kGiB);
    return std::make_tuple(std::move(out), device->ftl().Stats(),
                           device->QueryHealth(), device->HostBytesWritten(),
                           device->clock().Now().nanos());
  };
  auto [out1, stats1, health1, bytes1, now1] = run(1);
  auto [out64, stats64, health64, bytes64, now64] = run(64);
  ExpectTransitionsEqual(out1, out64);
  ExpectStatsEqual(stats1, stats64);
  ExpectHealthEqual(health1, health64);
  EXPECT_EQ(bytes1, bytes64);
  EXPECT_EQ(now1, now64);
}

// Running a tiny device all the way to brick: the batched path must fail on
// the same write, with the same status, totals, and transition history.
TEST(BatchEquivalenceTest, RunToBrickMatchesPerRequest) {
  auto run = [](uint64_t batch) {
    auto device = MakeTinyDevice(/*seed=*/11);
    WearWorkloadConfig w;
    w.footprint_bytes = 4 * kMiB;
    w.batch_requests = batch;
    WearOutExperiment exp(*device, w);
    WearRunOutcome out = exp.Run(1000, 1ull << 60);
    return std::make_tuple(std::move(out), device->ftl().Stats(),
                           device->HostBytesWritten(),
                           device->clock().Now().nanos());
  };
  auto [out1, stats1, bytes1, now1] = run(1);
  auto [out48, stats48, bytes48, now48] = run(48);
  EXPECT_TRUE(out1.bricked);
  ExpectTransitionsEqual(out1, out48);
  ExpectStatsEqual(stats1, stats48);
  EXPECT_EQ(bytes1, bytes48);
  EXPECT_EQ(now1, now48);
}

}  // namespace
}  // namespace flashsim
