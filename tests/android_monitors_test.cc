#include "src/android/monitors.h"

#include <gtest/gtest.h>

#include "src/simcore/units.h"

namespace flashsim {
namespace {

constexpr AppId kApp = 42;

TEST(PowerMonitorTest, AttributesOnBatteryOnly) {
  PowerMonitor monitor;
  PhoneState on_battery{false, true};
  PhoneState charging{true, false};
  monitor.RecordIo(kApp, kGiB, SimTime(), on_battery);
  monitor.RecordIo(kApp, kGiB, SimTime(), charging);
  // Only the on-battery GiB counts (40 J/GiB default).
  EXPECT_NEAR(monitor.AttributedJoules(kApp), 40.0, 1e-9);
}

TEST(PowerMonitorTest, FlagsAboveDailyThreshold) {
  PowerMonitorConfig cfg;
  cfg.flag_threshold_joules_per_day = 50.0;
  PowerMonitor monitor(cfg);
  PhoneState on_battery{false, false};
  const SimTime now = SimTime(3600ll * 1000000000);  // 1 hour in
  monitor.RecordIo(kApp, kGiB, now, on_battery);
  EXPECT_FALSE(monitor.IsFlagged(kApp, now)) << "40 J < 50 J/day";
  monitor.RecordIo(kApp, kGiB, now, on_battery);
  EXPECT_TRUE(monitor.IsFlagged(kApp, now)) << "80 J > 50 J/day";
}

TEST(PowerMonitorTest, DailyRateAveragesOverDays) {
  PowerMonitor monitor;
  PhoneState on_battery{false, false};
  monitor.RecordIo(kApp, 2 * kGiB, SimTime(), on_battery);  // 80 J once
  const SimTime after_ten_days = SimTime(10ll * 86400 * 1000000000);
  EXPECT_FALSE(monitor.IsFlagged(kApp, after_ten_days)) << "8 J/day average";
}

TEST(PowerMonitorTest, UnknownAppHasZero) {
  PowerMonitor monitor;
  EXPECT_DOUBLE_EQ(monitor.AttributedJoules(7), 0.0);
  EXPECT_FALSE(monitor.IsFlagged(7, SimTime()));
}

TEST(ProcessMonitorTest, CatchesScreenOnIo) {
  ProcessMonitor monitor;
  UsageSchedule schedule;  // 10:00-10:06 screen on
  const SimTime start = SimTime(10ll * 3600 * 1000000000);
  const SimTime end = start + SimDuration::Minutes(3);
  monitor.ObserveIo(kApp, start, end, schedule);
  // ~180 one-second samples, all screen-on.
  EXPECT_GE(monitor.SamplesCaught(kApp), 170u);
  EXPECT_TRUE(monitor.IsFlagged(kApp));
}

TEST(ProcessMonitorTest, MissesScreenOffIo) {
  ProcessMonitor monitor;
  UsageSchedule schedule;
  const SimTime start = SimTime(2ll * 3600 * 1000000000);  // 02:00, asleep
  monitor.ObserveIo(kApp, start, start + SimDuration::Minutes(30), schedule);
  EXPECT_EQ(monitor.SamplesCaught(kApp), 0u);
  EXPECT_FALSE(monitor.IsFlagged(kApp));
}

TEST(ProcessMonitorTest, FlagThresholdRespected) {
  ProcessMonitorConfig cfg;
  cfg.flag_after_samples = 100;
  ProcessMonitor monitor(cfg);
  UsageSchedule schedule;
  const SimTime start = SimTime(10ll * 3600 * 1000000000);
  monitor.ObserveIo(kApp, start, start + SimDuration::Seconds(50), schedule);
  EXPECT_FALSE(monitor.IsFlagged(kApp)) << "~50 samples < 100";
}

TEST(ProcessMonitorTest, SamplingDoesNotDoubleCount) {
  ProcessMonitor monitor;
  UsageSchedule schedule;
  const SimTime start = SimTime(10ll * 3600 * 1000000000);
  // Two abutting bursts must sample each second at most once.
  monitor.ObserveIo(kApp, start, start + SimDuration::Seconds(10), schedule);
  monitor.ObserveIo(kApp, start + SimDuration::Seconds(10),
                    start + SimDuration::Seconds(20), schedule);
  EXPECT_LE(monitor.SamplesCaught(kApp), 21u);
}

TEST(ThermalModelTest, HeatsWithIoAndCools) {
  ThermalModel thermal;
  EXPECT_DOUBLE_EQ(thermal.TemperatureAt(SimTime()), 25.0);
  thermal.RecordIo(10 * kGiB, SimTime());
  const double hot = thermal.TemperatureAt(SimTime());
  EXPECT_GT(hot, 30.0);
  // After two half-lives the excess has quartered.
  const SimTime later = SimTime() + SimDuration::Seconds(1200);
  EXPECT_NEAR(thermal.TemperatureAt(later) - 25.0, (hot - 25.0) / 4.0, 0.1);
}

TEST(ThermalModelTest, SuspicionOnlyOffCharger) {
  ThermalModel thermal;
  thermal.RecordIo(50 * kGiB, SimTime());  // scorching
  PhoneState charging{true, false};
  PhoneState on_battery{false, false};
  EXPECT_FALSE(thermal.IsSuspicious(SimTime(), charging))
      << "heat attributed to the charger (§4.4)";
  EXPECT_TRUE(thermal.IsSuspicious(SimTime(), on_battery));
}

TEST(ThermalModelTest, CoolPhoneNeverSuspicious) {
  ThermalModel thermal;
  PhoneState on_battery{false, false};
  EXPECT_FALSE(thermal.IsSuspicious(SimTime(), on_battery));
  thermal.RecordIo(kMiB, SimTime());
  EXPECT_FALSE(thermal.IsSuspicious(SimTime(), on_battery));
}

}  // namespace
}  // namespace flashsim
