#include "src/android/defense.h"

#include <gtest/gtest.h>

#include "src/fs/extfs.h"
#include "src/simcore/units.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

TEST(IoAccountantTest, TracksPerAppUsage) {
  IoAccountant acc;
  acc.RecordWrite(1, 100);
  acc.RecordWrite(1, 200);
  acc.RecordRead(1, 50);
  acc.RecordWrite(2, 1000);
  EXPECT_EQ(acc.Usage(1).bytes_written, 300u);
  EXPECT_EQ(acc.Usage(1).bytes_read, 50u);
  EXPECT_EQ(acc.Usage(1).write_ops, 2u);
  EXPECT_EQ(acc.Usage(2).bytes_written, 1000u);
  EXPECT_EQ(acc.Usage(99).bytes_written, 0u);
}

TEST(IoAccountantTest, TopWritersSorted) {
  IoAccountant acc;
  acc.RecordWrite(1, 10);
  acc.RecordWrite(2, 1000);
  acc.RecordWrite(3, 100);
  const auto top = acc.TopWriters();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 2u);
  EXPECT_EQ(top[1].first, 3u);
  EXPECT_EQ(top[2].first, 1u);
}

TEST(RateLimiterTest, BudgetFromLifespanTarget) {
  RateLimiterConfig cfg;
  cfg.target_lifetime_days = 1000.0;
  cfg.rated_rewrites = 1000.0;
  WearRateLimiter limiter(cfg, 1000 * kMiB);
  // 1000 rewrites of 1000 MiB over 1000 days = 1000 MiB/day.
  EXPECT_NEAR(limiter.BudgetBytesPerSec(), 1000.0 * kMiB / 86400.0, 1.0);
}

TEST(RateLimiterTest, BurstPassesUnthrottled) {
  RateLimiterConfig cfg;
  cfg.burst_bytes = 10 * kMiB;
  WearRateLimiter limiter(cfg, kGiB);
  const ThrottleDecision d = limiter.Admit(1, 5 * kMiB, SimTime());
  EXPECT_FALSE(d.throttled);
  EXPECT_EQ(d.delay.nanos(), 0);
}

TEST(RateLimiterTest, SustainedAbuseThrottled) {
  RateLimiterConfig cfg;
  cfg.burst_bytes = kMiB;
  WearRateLimiter limiter(cfg, kGiB);
  (void)limiter.Admit(1, kMiB, SimTime());  // drain the bucket
  const ThrottleDecision d = limiter.Admit(1, kMiB, SimTime());
  EXPECT_TRUE(d.throttled);
  EXPECT_GT(d.delay.nanos(), 0);
  // The imposed delay equals deficit / budget rate.
  const double expected_seconds =
      static_cast<double>(kMiB) / limiter.BudgetBytesPerSec();
  EXPECT_NEAR(d.delay.ToSecondsF(), expected_seconds, expected_seconds * 0.01);
}

TEST(RateLimiterTest, TokensRefillOverTime) {
  RateLimiterConfig cfg;
  cfg.burst_bytes = kMiB;
  WearRateLimiter limiter(cfg, kGiB);
  (void)limiter.Admit(1, kMiB, SimTime());
  // Wait long enough for a full refill.
  const double refill_seconds =
      static_cast<double>(kMiB) / limiter.BudgetBytesPerSec();
  const SimTime later = SimTime() + SimDuration::FromSecondsF(refill_seconds * 1.1);
  EXPECT_FALSE(limiter.Admit(1, kMiB, later).throttled);
}

TEST(RateLimiterTest, SelectiveIsolatesApps) {
  RateLimiterConfig cfg;
  cfg.selective = true;
  cfg.burst_bytes = kMiB;
  WearRateLimiter limiter(cfg, kGiB);
  (void)limiter.Admit(1, kMiB, SimTime());             // app 1 drains its bucket
  EXPECT_TRUE(limiter.Admit(1, kMiB, SimTime()).throttled);
  EXPECT_FALSE(limiter.Admit(2, kMiB, SimTime()).throttled)
      << "selective mode must not punish app 2 for app 1's abuse";
}

TEST(RateLimiterTest, GlobalBucketPunishesEveryone) {
  RateLimiterConfig cfg;
  cfg.selective = false;
  cfg.burst_bytes = kMiB;
  WearRateLimiter limiter(cfg, kGiB);
  (void)limiter.Admit(1, kMiB, SimTime());
  EXPECT_TRUE(limiter.Admit(2, kMiB, SimTime()).throttled)
      << "naive global budget hits the benign app too (the paper's warning)";
}

TEST(WearIndicatorServiceTest, AlertsOnThresholds) {
  auto device = MakeTinyDevice();
  WearIndicatorService service({2, 3});
  service.Poll(*device, SimTime());
  EXPECT_TRUE(service.alerts().empty());
  // Wear the device into level >= 2 (health_rated_pe=100 on the tiny FTL).
  for (int round = 0; round < 16; ++round) {
    for (uint64_t off = 0; off < device->CapacityBytes(); off += 256 * 1024) {
      ASSERT_TRUE(device->Submit({IoKind::kWrite, off, 256 * 1024}).ok());
    }
  }
  service.Poll(*device, SimTime(123));
  ASSERT_FALSE(service.alerts().empty());
  EXPECT_GE(service.alerts().front().level, 2u);
  EXPECT_GE(service.last_seen_level(), 2u);
  // Polling again must not duplicate the alert for the same threshold.
  const size_t count = service.alerts().size();
  service.Poll(*device, SimTime(456));
  EXPECT_EQ(service.alerts().size(), count);
}

TEST(WearIndicatorServiceTest, SilentOnUnsupportedDevice) {
  FlashDeviceConfig cfg;
  cfg.health_supported = false;
  FlashDevice device(cfg, MakeTinyFtl());
  WearIndicatorService service({1});
  service.Poll(device, SimTime());
  EXPECT_TRUE(service.alerts().empty());
}

}  // namespace
}  // namespace flashsim
