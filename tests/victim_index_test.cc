// BucketVictimIndex unit tests: ordering contract, cursor laziness, probe
// accounting, and a randomized comparison against a naive reference for both
// bucket representations.

#include "src/simcore/victim_index.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "src/simcore/rng.h"

namespace flashsim {
namespace {

using Order = BucketVictimIndex::Order;

TEST(VictimIndexTest, EmptyPicksNothing) {
  BucketVictimIndex index;
  index.Reset(/*bucket_count=*/8, /*id_limit=*/64, Order::kById);
  EXPECT_TRUE(index.empty());
  uint32_t bucket = 0, id = 0;
  uint64_t probes = 0;
  EXPECT_FALSE(index.PickMin(8, &bucket, &id, &probes));
}

TEST(VictimIndexTest, PickMinReturnsLowestBucketThenLowestId) {
  BucketVictimIndex index;
  index.Reset(8, 256, Order::kById);
  index.Insert(5, 10);
  index.Insert(3, 200);
  index.Insert(3, 17);
  index.Insert(7, 1);
  uint32_t bucket = 0, id = 0;
  uint64_t probes = 0;
  ASSERT_TRUE(index.PickMin(8, &bucket, &id, &probes));
  EXPECT_EQ(bucket, 3u);
  EXPECT_EQ(id, 17u);  // lowest id within the lowest bucket
  EXPECT_EQ(index.size(), 4u);
}

TEST(VictimIndexTest, LimitBucketExcludesHighBuckets) {
  BucketVictimIndex index;
  index.Reset(8, 64, Order::kById);
  index.Insert(6, 2);
  index.Insert(7, 3);
  uint32_t bucket = 0, id = 0;
  uint64_t probes = 0;
  // Limit 6: only buckets 0..5 qualify, so nothing is picked...
  EXPECT_FALSE(index.PickMin(6, &bucket, &id, &probes));
  // ...but a higher limit finds bucket 6 (the cursor must not overshoot).
  ASSERT_TRUE(index.PickMin(7, &bucket, &id, &probes));
  EXPECT_EQ(bucket, 6u);
  EXPECT_EQ(id, 2u);
}

TEST(VictimIndexTest, MoveTracksKeyChanges) {
  BucketVictimIndex index;
  index.Reset(8, 64, Order::kById);
  index.Insert(4, 9);
  index.Move(4, 2, 9);
  EXPECT_FALSE(index.Contains(4, 9));
  EXPECT_TRUE(index.Contains(2, 9));
  uint32_t bucket = 0, id = 0;
  uint64_t probes = 0;
  ASSERT_TRUE(index.PickMin(8, &bucket, &id, &probes));
  EXPECT_EQ(bucket, 2u);
  EXPECT_EQ(id, 9u);
}

TEST(VictimIndexTest, InsertBelowCursorLowersIt) {
  BucketVictimIndex index;
  index.Reset(8, 64, Order::kById);
  index.Insert(6, 1);
  uint32_t bucket = 0, id = 0;
  uint64_t probes = 0;
  ASSERT_TRUE(index.PickMin(8, &bucket, &id, &probes));  // cursor now at 6
  index.Insert(1, 2);
  ASSERT_TRUE(index.PickMin(8, &bucket, &id, &probes));
  EXPECT_EQ(bucket, 1u);
  EXPECT_EQ(id, 2u);
}

TEST(VictimIndexTest, ProbesAreAmortizedConstant) {
  BucketVictimIndex index;
  index.Reset(128, 64, Order::kById);
  index.Insert(100, 5);
  uint32_t bucket = 0, id = 0;
  uint64_t probes = 0;
  ASSERT_TRUE(index.PickMin(128, &bucket, &id, &probes));
  const uint64_t first = probes;
  EXPECT_GE(first, 100u);  // first pick walks up to the occupied bucket
  // Repeated picks resume at the cursor: one probe each.
  for (int i = 0; i < 10; ++i) {
    probes = 0;
    ASSERT_TRUE(index.PickMin(128, &bucket, &id, &probes));
    EXPECT_EQ(probes, 1u);
  }
}

TEST(VictimIndexTest, SortKeyOrderPicksOldestThenLowestId) {
  BucketVictimIndex index;
  index.Reset(8, 64, Order::kBySortKeyThenId);
  index.Insert(2, 10, /*sort_key=*/50);
  index.Insert(2, 11, /*sort_key=*/20);
  index.Insert(2, 12, /*sort_key=*/20);
  uint64_t key = 0;
  uint32_t id = 0;
  ASSERT_TRUE(index.BucketMin(2, &key, &id));
  EXPECT_EQ(key, 20u);
  EXPECT_EQ(id, 11u);  // tie on sort key -> lowest id
  index.Erase(2, 11, 20);
  ASSERT_TRUE(index.BucketMin(2, &key, &id));
  EXPECT_EQ(id, 12u);
}

TEST(VictimIndexTest, MinIdAtLeastWalksAscendingIds) {
  BucketVictimIndex index;
  index.Reset(16, 256, Order::kById);
  index.Insert(3, 40);
  index.Insert(5, 7);
  index.Insert(2, 100);
  index.Insert(9, 1);  // above last_bucket, must be ignored
  uint64_t probes = 0;
  std::vector<uint32_t> seen;
  uint32_t next = 0;
  uint32_t id = 0;
  while (index.MinIdAtLeast(next, /*last_bucket=*/5, &id, &probes)) {
    seen.push_back(id);
    next = id + 1;
  }
  EXPECT_EQ(seen, (std::vector<uint32_t>{7, 40, 100}));
}

TEST(VictimIndexTest, BucketsGrowOnDemand) {
  BucketVictimIndex index;
  index.Reset(4, 64, Order::kById);
  index.Insert(200, 3);  // far beyond the initial bucket count
  EXPECT_GE(index.bucket_count(), 201u);
  EXPECT_TRUE(index.Contains(200, 3));
  uint32_t bucket = 0, id = 0;
  uint64_t probes = 0;
  ASSERT_TRUE(index.PickMin(index.bucket_count(), &bucket, &id, &probes));
  EXPECT_EQ(bucket, 200u);
}

// Randomized: the index must agree with a naive multiset under a churn of
// inserts, erases, key moves, and picks.
TEST(VictimIndexTest, RandomizedAgainstNaiveReference) {
  for (const Order order : {Order::kById, Order::kBySortKeyThenId}) {
    constexpr uint32_t kBuckets = 12;
    constexpr uint32_t kIds = 160;
    BucketVictimIndex index;
    index.Reset(kBuckets, kIds, order);
    // Reference: id -> (bucket, sort_key); absent means not a member.
    std::vector<std::pair<uint32_t, uint64_t>> ref(kIds, {UINT32_MAX, 0});
    Rng rng(1234);
    for (int step = 0; step < 20000; ++step) {
      const uint32_t id = static_cast<uint32_t>(rng.UniformU64(kIds));
      const uint32_t op = static_cast<uint32_t>(rng.UniformU64(4));
      if (op == 0 && ref[id].first == UINT32_MAX) {
        const uint32_t bucket = static_cast<uint32_t>(rng.UniformU64(kBuckets));
        const uint64_t key = rng.UniformU64(5);
        index.Insert(bucket, id, key);
        ref[id] = {bucket, key};
      } else if (op == 1 && ref[id].first != UINT32_MAX) {
        index.Erase(ref[id].first, id, ref[id].second);
        ref[id] = {UINT32_MAX, 0};
      } else if (op == 2 && ref[id].first != UINT32_MAX) {
        const uint32_t to = static_cast<uint32_t>(rng.UniformU64(kBuckets));
        index.Move(ref[id].first, to, id, ref[id].second);
        ref[id].first = to;
      } else if (op == 3) {
        // Pick and compare with the reference winner under the contract:
        // lowest bucket, then lowest (sort_key, id) / id.
        const uint32_t limit = 1 + static_cast<uint32_t>(rng.UniformU64(kBuckets));
        uint32_t got_bucket = 0, got_id = 0;
        uint64_t probes = 0;
        const bool got = index.PickMin(limit, &got_bucket, &got_id, &probes);
        std::tuple<uint32_t, uint64_t, uint32_t> best{UINT32_MAX, 0, 0};
        bool want = false;
        for (uint32_t i = 0; i < kIds; ++i) {
          if (ref[i].first >= limit) {
            continue;
          }
          const uint64_t key = order == Order::kById ? 0 : ref[i].second;
          const std::tuple<uint32_t, uint64_t, uint32_t> cand{ref[i].first, key, i};
          if (!want || cand < best) {
            best = cand;
            want = true;
          }
        }
        ASSERT_EQ(got, want) << "step " << step;
        if (got) {
          EXPECT_EQ(got_bucket, std::get<0>(best)) << "step " << step;
          EXPECT_EQ(got_id, std::get<2>(best)) << "step " << step;
        }
      }
    }
    // Full-membership audit at the end.
    size_t members = 0;
    for (uint32_t i = 0; i < kIds; ++i) {
      if (ref[i].first != UINT32_MAX) {
        ++members;
        EXPECT_TRUE(index.Contains(ref[i].first, i, ref[i].second));
      }
    }
    EXPECT_EQ(index.size(), members);
  }
}

}  // namespace
}  // namespace flashsim
