#include "src/android/benign_apps.h"

#include <gtest/gtest.h>

#include "src/fs/extfs.h"
#include "src/simcore/units.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

class BenignAppsTest : public ::testing::Test {
 protected:
  BenignAppsTest() : device_(MakeDurableDevice()), fs_(*device_), system_(fs_) {}
  std::unique_ptr<FlashDevice> device_;
  ExtFs fs_;
  AndroidSystem system_;
};

TEST_F(BenignAppsTest, CameraWritesBurstsOnSchedule) {
  CameraAppConfig cfg;
  cfg.burst_bytes = 4 * kMiB;
  cfg.burst_interval = SimDuration::Hours(1);
  CameraApp camera(system_, cfg);
  ASSERT_TRUE(camera.RunUntil(system_.Now() + SimDuration::Hours(3)).ok());
  // Bursts at t=0, 1h, 2h => 3 clips of 4 MiB.
  EXPECT_EQ(camera.bytes_written(), 3u * 4 * kMiB);
  EXPECT_TRUE(fs_.Exists("data/app201/clip0.mp4"));
  EXPECT_TRUE(fs_.Exists("data/app201/clip2.mp4"));
  EXPECT_GT(camera.last_burst_seconds(), 0.0);
}

TEST_F(BenignAppsTest, CameraIdlesBetweenBursts) {
  CameraAppConfig cfg;
  cfg.burst_bytes = 1 * kMiB;
  cfg.burst_interval = SimDuration::Hours(1);
  CameraApp camera(system_, cfg);
  ASSERT_TRUE(camera.RunUntil(system_.Now() + SimDuration::Hours(2)).ok());
  // The clock advanced the full two hours, nearly all idle.
  EXPECT_GE(system_.Now().ToHoursF(), 2.0);
}

TEST_F(BenignAppsTest, SpotifyBugChurnsItsCache) {
  SpotifyBugAppConfig cfg;
  cfg.cache_bytes = 2 * kMiB;
  cfg.write_bytes = 64 * 1024;
  SpotifyBugApp spotify(system_, cfg);
  ASSERT_TRUE(spotify.RunUntil(system_.Now() + SimDuration::Minutes(10)).ok());
  EXPECT_GT(spotify.bytes_written(), 10u * kMiB)
      << "the bug rewrites far more than the cache size";
  // The cache footprint stays bounded even though writes are unbounded.
  EXPECT_LE(fs_.FileSize("data/app202/mercury.db").value(), 2 * kMiB);
}

TEST_F(BenignAppsTest, SpotifyDutyCycleSlowsRate) {
  SpotifyBugAppConfig fast;
  fast.cache_bytes = 2 * kMiB;  // must fit the tiny test device
  fast.duty_cycle = 1.0;
  SpotifyBugAppConfig slow = fast;
  slow.app_id = 204;
  slow.duty_cycle = 0.25;
  SpotifyBugApp fast_app(system_, fast);
  SpotifyBugApp slow_app(system_, slow);
  ASSERT_TRUE(fast_app.RunUntil(system_.Now() + SimDuration::Minutes(2)).ok());
  const uint64_t fast_bytes = fast_app.bytes_written();
  ASSERT_TRUE(slow_app.RunUntil(system_.Now() + SimDuration::Minutes(2)).ok());
  EXPECT_LT(slow_app.bytes_written(), fast_bytes / 2);
}

TEST_F(BenignAppsTest, MessagingTrickleIsSlow) {
  MessagingAppConfig cfg;
  cfg.write_interval = SimDuration::Seconds(5);
  MessagingApp messaging(system_, cfg);
  ASSERT_TRUE(messaging.RunUntil(system_.Now() + SimDuration::Minutes(5)).ok());
  // ~60 writes of 4 KiB in 5 minutes.
  EXPECT_GE(messaging.bytes_written(), 55u * 4096);
  EXPECT_LE(messaging.bytes_written(), 70u * 4096);
}

TEST_F(BenignAppsTest, AppsCoexistInOneSystem) {
  CameraAppConfig cam;
  cam.burst_bytes = 1 * kMiB;
  CameraApp camera(system_, cam);
  MessagingApp messaging(system_, MessagingAppConfig{});
  SpotifyBugAppConfig bug;
  bug.cache_bytes = 1 * kMiB;
  SpotifyBugApp spotify(system_, bug);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(camera.RunUntil(system_.Now() + SimDuration::Minutes(1)).ok());
    ASSERT_TRUE(messaging.RunUntil(system_.Now() + SimDuration::Minutes(1)).ok());
    ASSERT_TRUE(spotify.RunUntil(system_.Now() + SimDuration::Minutes(1)).ok());
  }
  const auto top = system_.accountant().TopWriters();
  EXPECT_EQ(top.size(), 3u);
  EXPECT_EQ(top.front().first, bug.app_id) << "the cache bug dominates I/O";
}

TEST_F(BenignAppsTest, NamesAndIds) {
  CameraApp camera(system_, CameraAppConfig{});
  SpotifyBugApp spotify(system_, SpotifyBugAppConfig{});
  MessagingApp messaging(system_, MessagingAppConfig{});
  EXPECT_STREQ(camera.name(), "camera");
  EXPECT_STREQ(spotify.name(), "spotify-bug");
  EXPECT_STREQ(messaging.name(), "messaging");
  EXPECT_NE(camera.app_id(), spotify.app_id());
  EXPECT_NE(spotify.app_id(), messaging.app_id());
}

}  // namespace
}  // namespace flashsim
