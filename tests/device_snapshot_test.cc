// Device snapshot/restore (DESIGN.md §12).
//
// The headline property: a device saved mid-campaign and restored into a
// freshly constructed, identically configured device continues BIT-EXACTLY
// with the device it was saved from — same victim sequences, wear tables,
// health registers, clock, and stats, all the way to end of life, including
// across a power cut injected after the restore. Equality is asserted on the
// full re-serialized snapshot bytes, which covers every serialized field at
// once.
//
// Also covers the container format itself: primitive round-trips, nested
// sections, unknown-section skip and appended-field skip (the forward-
// compatibility policy), and geometry fingerprint rejection.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/device/flash_device.h"
#include "src/ftl/block_map_ftl.h"
#include "src/simcore/fault_plan.h"
#include "src/simcore/snapshot.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

std::vector<uint8_t> Serialize(const FlashDevice& device) {
  SnapshotWriter w;
  device.SaveState(w);
  return w.buffer();
}

// Deterministic page-aligned single-page write stream (splitmix-style LCG).
// Returns the number of pages written; stops early once the device refuses
// writes (end of life) or a write fails (e.g. an armed power cut fires).
uint64_t WritePages(FlashDevice& device, uint64_t seed, uint64_t pages,
                    Status* first_error = nullptr) {
  const uint64_t page = device.PageSizeBytes();
  const uint64_t logical_pages = device.CapacityBytes() / page;
  uint64_t x = seed;
  for (uint64_t i = 0; i < pages; ++i) {
    if (device.IsReadOnly()) {
      return i;
    }
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t lpn = (x >> 33) % logical_pages;
    Result<IoCompletion> done =
        device.Submit({IoKind::kWrite, lpn * page, page});
    if (!done.ok()) {
      if (first_error != nullptr) {
        *first_error = done.status();
      }
      return i;
    }
  }
  return pages;
}

TEST(SnapshotContainerTest, PrimitivesRoundTrip) {
  SnapshotWriter w;
  w.BeginSection(SnapshotTag("TEST"));
  w.U8(0xab);
  w.Bool(true);
  w.U32(0xdeadbeefu);
  w.U64(0x0123456789abcdefull);
  w.F64(-1.5);
  w.Str("flash");
  w.VecU32({1, 2, 3});
  w.VecU64({~0ull});
  w.EndSection();

  SnapshotReader r(w.buffer());
  ASSERT_TRUE(r.EnterSection(SnapshotTag("TEST")).ok());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.F64(), -1.5);
  EXPECT_EQ(r.Str(), "flash");
  std::vector<uint32_t> v32;
  std::vector<uint64_t> v64;
  r.VecU32(&v32);
  r.VecU64(&v64);
  EXPECT_EQ(v32, (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(v64, (std::vector<uint64_t>{~0ull}));
  r.LeaveSection();
  EXPECT_TRUE(r.ok());
}

// Forward compatibility: a reader skips whole sections it does not know and
// fields appended at the end of a section it only partially consumes.
TEST(SnapshotContainerTest, SkipsUnknownSectionsAndAppendedFields) {
  SnapshotWriter w;
  w.BeginSection(SnapshotTag("NEWS"));  // section from a "newer" writer
  w.U64(123);
  w.EndSection();
  w.BeginSection(SnapshotTag("KNOW"));
  w.U32(7);
  w.U64(999);  // appended field this reader does not consume
  w.EndSection();
  w.BeginSection(SnapshotTag("TAIL"));
  w.U32(42);
  w.EndSection();

  SnapshotReader r(w.buffer());
  ASSERT_TRUE(r.EnterSection(SnapshotTag("KNOW")).ok());
  EXPECT_EQ(r.U32(), 7u);
  r.LeaveSection();  // jumps over the unread appended field
  ASSERT_TRUE(r.EnterSection(SnapshotTag("TAIL")).ok());
  EXPECT_EQ(r.U32(), 42u);
  r.LeaveSection();
  EXPECT_TRUE(r.ok());
}

TEST(SnapshotContainerTest, MissingSectionAndTruncationFailSticky) {
  SnapshotWriter w;
  w.BeginSection(SnapshotTag("ONLY"));
  w.U32(1);
  w.EndSection();

  SnapshotReader r(w.buffer());
  EXPECT_FALSE(r.EnterSection(SnapshotTag("GONE")).ok());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U64(), 0u);  // sticky: reads after failure return zero

  std::vector<uint8_t> truncated(w.buffer().begin(), w.buffer().end() - 2);
  SnapshotReader t(truncated);
  ASSERT_TRUE(t.EnterSection(SnapshotTag("ONLY")).ok() || !t.ok());
  t.U32();
  t.U32();  // walks past the truncated end
  EXPECT_FALSE(t.ok());
}

// Mid-campaign save/restore, then both devices continue with an identical
// stream: the restored device must be indistinguishable from the one that
// never stopped, down to the last serialized byte.
TEST(DeviceSnapshotTest, PageMapRoundTripContinuesBitExact) {
  auto continuous = MakeTinyDevice(/*seed=*/5);
  auto interrupted = MakeTinyDevice(/*seed=*/5);
  ASSERT_EQ(WritePages(*continuous, 77, 4000), 4000u);
  ASSERT_EQ(WritePages(*interrupted, 77, 4000), 4000u);

  // Snapshot the interrupted device and restore into a fresh one.
  SnapshotWriter w;
  interrupted->SaveState(w);
  auto restored = MakeTinyDevice(/*seed=*/999);  // seed overwritten by load
  SnapshotReader r(w.buffer());
  ASSERT_TRUE(restored->LoadState(r).ok());

  // The restored state re-serializes to the exact same bytes.
  EXPECT_EQ(Serialize(*restored), w.buffer());

  // Both continue with the same stream (GC, wear leveling, and background
  // reclaim all fire in this range on the tiny geometry).
  ASSERT_EQ(WritePages(*continuous, 1234, 6000), 6000u);
  ASSERT_EQ(WritePages(*restored, 1234, 6000), 6000u);
  EXPECT_EQ(continuous->clock().Now().nanos(), restored->clock().Now().nanos());
  EXPECT_EQ(continuous->ftl().Stats().victim_seq_hash,
            restored->ftl().Stats().victim_seq_hash);
  EXPECT_EQ(Serialize(*continuous), Serialize(*restored));
}

TEST(DeviceSnapshotTest, RoundTripRunsToEndOfLifeBitExact) {
  // Aggressively worn tiny device so EOL arrives quickly.
  const auto make = [] {
    NandChipConfig nand = TinyChipConfig();
    nand.rated_pe_cycles = 40;
    FtlConfig ftl = TinyFtlConfig();
    ftl.health_rated_pe = 30;
    FlashDeviceConfig dev;
    dev.name = "tiny-eol-device";
    dev.perf.per_request_overhead = SimDuration::Micros(100);
    dev.perf.bus_mib_per_sec = 100.0;
    dev.perf.effective_parallelism = 4;
    return std::make_unique<FlashDevice>(
        std::move(dev), std::make_unique<PageMapFtl>(nand, ftl, /*seed=*/3));
  };
  auto continuous = make();
  auto interrupted = make();
  ASSERT_EQ(WritePages(*continuous, 21, 20000), 20000u);
  ASSERT_EQ(WritePages(*interrupted, 21, 20000), 20000u);

  SnapshotWriter w;
  interrupted->SaveState(w);
  auto restored = make();
  SnapshotReader r(w.buffer());
  ASSERT_TRUE(restored->LoadState(r).ok());

  // Drive both to end of life with the same stream; they must brick on the
  // same write with identical wear tables and health registers.
  const uint64_t kPlenty = 10u * 1000 * 1000;
  const uint64_t done_a = WritePages(*continuous, 4242, kPlenty);
  const uint64_t done_b = WritePages(*restored, 4242, kPlenty);
  ASSERT_LT(done_a, kPlenty) << "device never reached end of life";
  EXPECT_EQ(done_a, done_b);
  EXPECT_TRUE(continuous->IsReadOnly());
  EXPECT_TRUE(restored->IsReadOnly());
  const NandChip& chip_a =
      static_cast<const PageMapFtl&>(continuous->ftl()).chip();
  const NandChip& chip_b =
      static_cast<const PageMapFtl&>(restored->ftl()).chip();
  const WearSummary wear_a = chip_a.ComputeWearSummary();
  const WearSummary wear_b = chip_b.ComputeWearSummary();
  EXPECT_EQ(wear_a.total_pe, wear_b.total_pe);
  EXPECT_EQ(wear_a.max_pe, wear_b.max_pe);
  EXPECT_EQ(wear_a.bad_blocks, wear_b.bad_blocks);
  EXPECT_EQ(Serialize(*continuous), Serialize(*restored));
}

// A power cut after the restore: both devices get an identical armed rail,
// tear on the same destructive operation, remount, and keep matching.
TEST(DeviceSnapshotTest, PowerCutAfterRestoreMatchesContinuous) {
  auto continuous = MakeTinyDevice(/*seed=*/9);
  auto interrupted = MakeTinyDevice(/*seed=*/9);
  ASSERT_EQ(WritePages(*continuous, 55, 4000), 4000u);
  ASSERT_EQ(WritePages(*interrupted, 55, 4000), 4000u);

  SnapshotWriter w;
  interrupted->SaveState(w);
  auto restored = MakeTinyDevice(/*seed=*/1);
  SnapshotReader r(w.buffer());
  ASSERT_TRUE(restored->LoadState(r).ok());

  PowerRail rail_a, rail_b;
  rail_a.Arm(FaultPlan::AtOpCount(300));
  rail_b.Arm(FaultPlan::AtOpCount(300));
  continuous->AttachPowerRail(&rail_a);
  restored->AttachPowerRail(&rail_b);

  Status err_a = Status::Ok();
  Status err_b = Status::Ok();
  const uint64_t done_a = WritePages(*continuous, 31, 4000, &err_a);
  const uint64_t done_b = WritePages(*restored, 31, 4000, &err_b);
  EXPECT_EQ(done_a, done_b);
  ASSERT_EQ(err_a.code(), StatusCode::kPowerLoss);
  ASSERT_EQ(err_b.code(), StatusCode::kPowerLoss);
  EXPECT_EQ(rail_a.cuts_delivered(), 1u);
  EXPECT_EQ(rail_b.cuts_delivered(), 1u);

  rail_a.Restore();
  rail_b.Restore();
  Result<RecoveryReport> rep_a = continuous->Remount();
  Result<RecoveryReport> rep_b = restored->Remount();
  ASSERT_TRUE(rep_a.ok());
  ASSERT_TRUE(rep_b.ok());
  EXPECT_EQ(rep_a.value().torn_pages_discarded,
            rep_b.value().torn_pages_discarded);

  ASSERT_EQ(WritePages(*continuous, 616, 3000), 3000u);
  ASSERT_EQ(WritePages(*restored, 616, 3000), 3000u);
  EXPECT_EQ(Serialize(*continuous), Serialize(*restored));
}

TEST(DeviceSnapshotTest, HybridRoundTripContinuesBitExact) {
  const auto make = [](uint64_t seed) {
    FlashDeviceConfig dev;
    dev.name = "tiny-hybrid-device";
    dev.perf.per_request_overhead = SimDuration::Micros(100);
    dev.perf.bus_mib_per_sec = 100.0;
    dev.perf.effective_parallelism = 4;
    return std::make_unique<FlashDevice>(std::move(dev), MakeTinyHybrid(seed));
  };
  auto continuous = make(5);
  auto interrupted = make(5);
  // Enough traffic to fill and evict cache blocks repeatedly (and typically
  // enter merged mode on the tiny geometry).
  ASSERT_EQ(WritePages(*continuous, 88, 6000), 6000u);
  ASSERT_EQ(WritePages(*interrupted, 88, 6000), 6000u);

  SnapshotWriter w;
  interrupted->SaveState(w);
  auto restored = make(123);
  SnapshotReader r(w.buffer());
  ASSERT_TRUE(restored->LoadState(r).ok());
  EXPECT_EQ(Serialize(*restored), w.buffer());

  ASSERT_EQ(WritePages(*continuous, 4321, 6000), 6000u);
  ASSERT_EQ(WritePages(*restored, 4321, 6000), 6000u);
  EXPECT_EQ(continuous->clock().Now().nanos(), restored->clock().Now().nanos());
  EXPECT_EQ(Serialize(*continuous), Serialize(*restored));
}

TEST(DeviceSnapshotTest, BlockMapRoundTripContinuesBitExact) {
  NandChipConfig nand = TinyChipConfig();
  BlockMapFtlConfig config;
  const auto drive = [](BlockMapFtl& ftl, uint64_t seed, uint64_t pages) {
    const uint64_t logical = ftl.LogicalPageCount();
    uint64_t x = seed;
    for (uint64_t i = 0; i < pages; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      // Half sequential-ish runs (switch merges), half random (full merges).
      const uint64_t lpn = (x >> 33) % logical;
      ASSERT_TRUE(ftl.WritePage(lpn).ok());
    }
  };
  BlockMapFtl continuous(nand, config, /*seed=*/7);
  BlockMapFtl interrupted(nand, config, /*seed=*/7);
  drive(continuous, 14, 3000);
  drive(interrupted, 14, 3000);

  SnapshotWriter w;
  interrupted.SaveState(w);
  BlockMapFtl restored(nand, config, /*seed=*/99);
  SnapshotReader r(w.buffer());
  ASSERT_TRUE(restored.LoadState(r).ok());

  drive(continuous, 2718, 3000);
  drive(restored, 2718, 3000);
  EXPECT_EQ(continuous.full_merges(), restored.full_merges());
  EXPECT_EQ(continuous.switch_merges(), restored.switch_merges());
  SnapshotWriter wa, wb;
  continuous.SaveState(wa);
  restored.SaveState(wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());
}

TEST(DeviceSnapshotTest, MismatchedGeometryIsRejected) {
  auto device = MakeTinyDevice(/*seed=*/2);
  ASSERT_EQ(WritePages(*device, 3, 500), 500u);
  SnapshotWriter w;
  device->SaveState(w);

  // Same device name, different chip geometry.
  NandChipConfig nand = TinyChipConfig();
  nand.blocks_per_die = 32;
  FlashDeviceConfig dev;
  dev.name = "tiny-device";
  dev.perf.per_request_overhead = SimDuration::Micros(100);
  dev.perf.bus_mib_per_sec = 100.0;
  dev.perf.effective_parallelism = 4;
  FlashDevice wrong_geometry(
      std::move(dev), std::make_unique<PageMapFtl>(nand, TinyFtlConfig(), 2));
  SnapshotReader r(w.buffer());
  EXPECT_EQ(wrong_geometry.LoadState(r).code(), StatusCode::kFailedPrecondition);

  // Different device name.
  auto other = MakeDurableDevice(/*seed=*/2);
  SnapshotReader r2(w.buffer());
  EXPECT_EQ(other->LoadState(r2).code(), StatusCode::kFailedPrecondition);
}

TEST(DeviceSnapshotTest, FileRoundTrip) {
  auto device = MakeTinyDevice(/*seed=*/4);
  ASSERT_EQ(WritePages(*device, 17, 1000), 1000u);
  const std::string path = testing::TempDir() + "/device_snapshot_test.fsnp";
  ASSERT_TRUE(device->SaveSnapshotFile(path).ok());

  auto restored = MakeTinyDevice(/*seed=*/4);
  ASSERT_TRUE(restored->LoadSnapshotFile(path).ok());
  EXPECT_EQ(Serialize(*device), Serialize(*restored));
  std::remove(path.c_str());

  EXPECT_FALSE(
      restored->LoadSnapshotFile(testing::TempDir() + "/missing.fsnp").ok());
}

// Batched write stream for the queued-submission paths: groups of 16
// single-page writes from the same LCG family as WritePages.
void WriteBatches(FlashDevice& device, uint64_t seed, int batches) {
  const uint64_t page = device.PageSizeBytes();
  const uint64_t logical_pages = device.CapacityBytes() / page;
  uint64_t x = seed;
  std::vector<IoRequest> group;
  for (int b = 0; b < batches; ++b) {
    group.clear();
    for (int i = 0; i < 16; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      const uint64_t lpn = (x >> 33) % logical_pages;
      group.push_back(IoRequest{IoKind::kWrite, lpn * page, page});
    }
    const BatchCompletion done = device.SubmitBatch(group.data(), group.size());
    ASSERT_TRUE(done.status.ok()) << done.status.message();
  }
}

TEST(DeviceSnapshotTest, QueuedDeviceRoundTripContinuesBitExact) {
  // Event engine active (channels=2, depth=8) with latency digests on: a
  // mid-campaign snapshot must capture the digests and the quiesced queue
  // (drained at every submission boundary, so there is nothing in flight to
  // lose), and the restored device must continue bit-exactly.
  const auto make = [] {
    auto device = MakeTinyDevice(/*seed=*/21);
    device->ConfigureQueue(2, 8, /*force_event_engine=*/false);
    return device;
  };
  auto continuous = make();
  auto interrupted = make();
  continuous->EnableLatencyDigests();
  interrupted->EnableLatencyDigests();
  WriteBatches(*continuous, 99, 200);
  WriteBatches(*interrupted, 99, 200);
  ASSERT_TRUE(continuous->UsesEventEngine());

  SnapshotWriter w;
  interrupted->SaveState(w);
  auto restored = make();  // same queue config; digests restored by load
  SnapshotReader r(w.buffer());
  ASSERT_TRUE(restored->LoadState(r).ok());
  EXPECT_EQ(Serialize(*restored), w.buffer());
  ASSERT_NE(restored->write_latency_digest(), nullptr);
  EXPECT_EQ(restored->write_latency_digest()->count(),
            continuous->write_latency_digest()->count());

  WriteBatches(*continuous, 1234, 300);
  WriteBatches(*restored, 1234, 300);
  EXPECT_EQ(continuous->clock().Now().nanos(), restored->clock().Now().nanos());
  EXPECT_EQ(continuous->write_latency_digest()->Quantile(0.99),
            restored->write_latency_digest()->Quantile(0.99));
  EXPECT_EQ(Serialize(*continuous), Serialize(*restored));
}

TEST(DeviceSnapshotTest, LatencyDigestStateRestoresExactly) {
  auto device = MakeTinyDevice(/*seed=*/8);
  device->EnableLatencyDigests();
  ASSERT_EQ(WritePages(*device, 55, 500), 500u);
  const uint64_t count = device->write_latency_digest()->count();
  ASSERT_GT(count, 0u);

  SnapshotWriter w;
  device->SaveState(w);
  // Restore into a device that never enabled digests: the load creates them.
  auto restored = MakeTinyDevice(/*seed=*/8);
  ASSERT_EQ(restored->write_latency_digest(), nullptr);
  SnapshotReader r(w.buffer());
  ASSERT_TRUE(restored->LoadState(r).ok());
  ASSERT_NE(restored->write_latency_digest(), nullptr);
  EXPECT_EQ(restored->write_latency_digest()->count(), count);
  EXPECT_EQ(restored->write_latency_digest()->Quantile(0.5),
            device->write_latency_digest()->Quantile(0.5));
}

TEST(DeviceSnapshotTest, SnapshotWithoutDigestsRestoresDisabled) {
  // Restoring a digest-free snapshot into a device that had digests enabled
  // must disable them: restored state matches saved state, not the target's
  // pre-load configuration.
  auto plain = MakeTinyDevice(/*seed=*/9);
  ASSERT_EQ(WritePages(*plain, 3, 100), 100u);
  SnapshotWriter w;
  plain->SaveState(w);

  auto target = MakeTinyDevice(/*seed=*/9);
  target->EnableLatencyDigests();
  ASSERT_EQ(WritePages(*target, 4, 50), 50u);
  SnapshotReader r(w.buffer());
  ASSERT_TRUE(target->LoadState(r).ok());
  EXPECT_EQ(target->write_latency_digest(), nullptr);
  EXPECT_EQ(Serialize(*target), w.buffer());
}

}  // namespace
}  // namespace flashsim
