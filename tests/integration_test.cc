// Cross-module integration tests: whole-stack behaviours the paper's story
// depends on, checked end-to-end at small scale.

#include <gtest/gtest.h>

#include "src/device/catalog.h"
#include "src/fs/extfs.h"
#include "src/fs/logfs.h"
#include "src/simcore/units.h"
#include "src/wearlab/bandwidth_probe.h"
#include "src/wearlab/lifetime_estimator.h"
#include "src/wearlab/phone.h"
#include "src/wearlab/wearout_experiment.h"

namespace flashsim {
namespace {

TEST(IntegrationTest, EnvelopeIsOptimisticAboutMeasuredWear) {
  // The headline claim: measured write budget << capacity x datasheet P/E.
  const SimScale scale{64, 64};
  auto device = MakeEmmc8(scale, 3);
  WearWorkloadConfig w;
  w.footprint_bytes = 8 * kMiB;
  WearOutExperiment exp(*device, w);
  const WearRunOutcome out = exp.RunUntilLevel(WearType::kSinglePool, 11, 64 * kGiB);
  ASSERT_FALSE(out.transitions.empty());
  const double measured_full =
      static_cast<double>(out.total_host_bytes) * scale.VolumeFactor();
  LifetimeEstimator envelope(8 * kGiB, 3000);
  const double optimism = envelope.OptimismFactor(measured_full);
  EXPECT_GT(optimism, 2.0);
  EXPECT_LT(optimism, 4.0);
}

TEST(IntegrationTest, AttackUsesUnder3PercentOfCapacity) {
  // §1: the attack needs <3% of storage capacity. Verify the harness's
  // footprint honours that and still kills the device.
  const SimScale scale{64, 64};
  auto device = MakeEmmc8(scale, 3);
  WearWorkloadConfig w;
  w.footprint_bytes = device->CapacityBytes() * 29 / 1000;
  WearOutExperiment exp(*device, w);
  const WearRunOutcome out = exp.RunUntilLevel(WearType::kSinglePool, 11, 64 * kGiB);
  EXPECT_EQ(device->QueryHealth().life_time_est_a, 11u);
}

TEST(IntegrationTest, PhoneBricksThroughFullStack) {
  // App -> Android -> FS -> device -> FTL -> NAND, all the way to the brick.
  Phone phone(MakeMotoE8(SimScale{64, 16}, 5), PhoneFsType::kExtFs);
  ASSERT_TRUE(phone.FillStaticData(0.4).ok());
  AttackAppConfig cfg;
  cfg.file_count = 2;
  cfg.file_bytes = 2 * kMiB;
  cfg.write_bytes = 64 * 1024;
  WearAttackApp app(phone.system(), cfg);
  ASSERT_TRUE(app.Install().ok());
  const AttackProgress p = app.RunUntilBricked(SimDuration::Hours(10000));
  EXPECT_TRUE(p.device_bricked);
  EXPECT_TRUE(phone.device().IsReadOnly());
  // Wear level telemetry saw it coming.
  EXPECT_EQ(phone.device().QueryHealth().life_time_est_a, 11u);
  EXPECT_EQ(phone.device().QueryHealth().pre_eol, PreEolInfo::kUrgent);
}

TEST(IntegrationTest, F2fsDoublesDeviceTrafficThroughWholeStack) {
  auto run = [](PhoneFsType fs_type) {
    Phone phone(MakeMotoE8(SimScale{64, 1}, 5), fs_type);
    AttackAppConfig cfg;
    cfg.file_count = 1;
    cfg.file_bytes = 2 * kMiB;
    cfg.write_bytes = 4096;
    cfg.sync = true;
    WearAttackApp app(phone.system(), cfg);
    EXPECT_TRUE(app.Install().ok());
    (void)app.RunUntil(phone.system().Now() + SimDuration::Seconds(30));
    return phone.fs().stats().FsWriteAmplification();
  };
  const double ext_wa = run(PhoneFsType::kExtFs);
  const double log_wa = run(PhoneFsType::kLogFs);
  EXPECT_LT(ext_wa, 1.2);
  EXPECT_GT(log_wa, 1.8);
}

TEST(IntegrationTest, WearIndicatorMostlyConstantVolumePerLevel) {
  const SimScale scale{64, 64};
  auto device = MakeEmmc8(scale, 9);
  WearWorkloadConfig w;
  w.footprint_bytes = 8 * kMiB;
  WearOutExperiment exp(*device, w);
  const WearRunOutcome out = exp.RunUntilLevel(WearType::kSinglePool, 11, 64 * kGiB);
  ASSERT_GE(out.transitions.size(), 9u);
  uint64_t min_bytes = UINT64_MAX;
  uint64_t max_bytes = 0;
  for (size_t i = 1; i < out.transitions.size(); ++i) {  // skip wear-in level
    min_bytes = std::min(min_bytes, out.transitions[i].host_bytes);
    max_bytes = std::max(max_bytes, out.transitions[i].host_bytes);
  }
  EXPECT_LT(static_cast<double>(max_bytes) / static_cast<double>(min_bytes), 1.4);
}

TEST(IntegrationTest, UfsOutpacesEmmcWhichOutpacesUsd) {
  // Figure 1 + Figure 3 combined shape: faster device = faster to destroy.
  const SimScale scale{64, 1};
  BandwidthProbeConfig probe;
  probe.request_bytes = 256 * 1024;
  probe.total_bytes = 8 * kMiB;
  probe.region_bytes = 16 * kMiB;
  auto usd = MakeUsd16(scale, 1);
  auto emmc = MakeEmmc8(scale, 1);
  auto ufs = MakeSamsungS6(scale, 1);
  const double usd_bw = RunBandwidthProbe(*usd, probe).mib_per_sec;
  const double emmc_bw = RunBandwidthProbe(*emmc, probe).mib_per_sec;
  const double ufs_bw = RunBandwidthProbe(*ufs, probe).mib_per_sec;
  EXPECT_GT(emmc_bw, usd_bw);
  EXPECT_GT(ufs_bw, emmc_bw);
}

TEST(IntegrationTest, RateLimiterDefendsDeviceLifetime) {
  // With the §4.5 limiter on, the same attack cannot push meaningful volume.
  auto make_phone = [](bool limiter) {
    AndroidSystemConfig sys;
    sys.enable_rate_limiter = limiter;
    sys.rate_limiter.burst_bytes = 4 * kMiB;
    return std::make_unique<Phone>(MakeMotoE8(SimScale{64, 1}, 5),
                                   PhoneFsType::kExtFs, sys);
  };
  auto run_attack = [](Phone& phone) {
    AttackAppConfig cfg;
    cfg.file_count = 1;
    cfg.file_bytes = 2 * kMiB;
    cfg.write_bytes = 256 * 1024;
    WearAttackApp app(phone.system(), cfg);
    EXPECT_TRUE(app.Install().ok());
    const AttackProgress p =
        app.RunUntil(phone.system().Now() + SimDuration::Hours(1));
    return p.bytes_written;
  };
  auto stock = make_phone(false);
  auto defended = make_phone(true);
  const uint64_t stock_bytes = run_attack(*stock);
  const uint64_t defended_bytes = run_attack(*defended);
  EXPECT_GT(stock_bytes, 50 * defended_bytes);
}

TEST(IntegrationTest, EventLogRecordsRetirementWarnings) {
  auto device = MakeBlu512(SimScale{16, 16}, 7);
  EventLog& unused = device->event_log();
  (void)unused;
  WearWorkloadConfig w;
  w.footprint_bytes = 2 * kMiB;
  w.request_bytes = 64 * 1024;
  WearOutExperiment exp(*device, w);
  (void)exp.Run(1, 1 * kTiB);  // runs to brick (no health reporting)
  EXPECT_TRUE(device->IsReadOnly());
}

}  // namespace
}  // namespace flashsim
