#include "src/simcore/units.h"

#include <gtest/gtest.h>

namespace flashsim {
namespace {

TEST(UnitsTest, ConstantsAreConsistent) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * kKiB);
  EXPECT_EQ(kGiB, 1024u * kMiB);
  EXPECT_EQ(kTiB, 1024u * kGiB);
}

TEST(UnitsTest, BytesToGiB) {
  EXPECT_DOUBLE_EQ(BytesToGiB(kGiB), 1.0);
  EXPECT_DOUBLE_EQ(BytesToGiB(kGiB / 2), 0.5);
  EXPECT_DOUBLE_EQ(BytesToGiB(0), 0.0);
}

TEST(UnitsTest, BytesToMiB) {
  EXPECT_DOUBLE_EQ(BytesToMiB(kMiB), 1.0);
  EXPECT_DOUBLE_EQ(BytesToMiB(3 * kMiB / 2), 1.5);
}

TEST(UnitsTest, FormatBytesPicksAdaptiveUnit) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(4096), "4.00 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB / 2), "1.50 MiB");
  EXPECT_EQ(FormatBytes(2 * kGiB), "2.00 GiB");
  EXPECT_EQ(FormatBytes(5 * kTiB), "5.00 TiB");
}

TEST(UnitsTest, FormatBandwidth) {
  EXPECT_EQ(FormatBandwidthMiBps(19.531), "19.53 MiB/s");
}

TEST(UnitsTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0u);
  EXPECT_EQ(CeilDiv(1, 4), 1u);
  EXPECT_EQ(CeilDiv(4, 4), 1u);
  EXPECT_EQ(CeilDiv(5, 4), 2u);
}

TEST(UnitsTest, RoundUpAndDown) {
  EXPECT_EQ(RoundUp(0, 8), 0u);
  EXPECT_EQ(RoundUp(1, 8), 8u);
  EXPECT_EQ(RoundUp(8, 8), 8u);
  EXPECT_EQ(RoundDown(7, 8), 0u);
  EXPECT_EQ(RoundDown(15, 8), 8u);
  EXPECT_EQ(RoundDown(16, 8), 16u);
}

TEST(UnitsTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(4096));
  EXPECT_FALSE(IsPowerOfTwo(4097));
  EXPECT_TRUE(IsPowerOfTwo(1ull << 63));
}

// Property sweep: CeilDiv/RoundUp agree for many (value, multiple) pairs.
class RoundingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundingProperty, RoundUpIsCeilDivTimesMultiple) {
  const uint64_t multiple = GetParam();
  for (uint64_t value = 0; value < 4 * multiple; ++value) {
    EXPECT_EQ(RoundUp(value, multiple), CeilDiv(value, multiple) * multiple);
    EXPECT_LE(RoundDown(value, multiple), value);
    EXPECT_GE(RoundUp(value, multiple), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Multiples, RoundingProperty,
                         ::testing::Values(1, 2, 3, 7, 512, 4096));

}  // namespace
}  // namespace flashsim
