#include "src/wearlab/phone.h"

#include <gtest/gtest.h>

#include "src/device/catalog.h"
#include "src/simcore/units.h"

namespace flashsim {
namespace {

constexpr SimScale kScale{64, 64};

AttackAppConfig SmallAttack() {
  AttackAppConfig cfg;
  cfg.file_count = 2;
  cfg.file_bytes = 2 * kMiB;
  cfg.write_bytes = 4096;
  return cfg;
}

TEST(PhoneTest, BootsWithEitherFilesystem) {
  Phone ext_phone(MakeMotoE8(kScale, 1), PhoneFsType::kExtFs);
  EXPECT_STREQ(ext_phone.fs().fs_type(), "extfs");
  Phone log_phone(MakeMotoE8(kScale, 1), PhoneFsType::kLogFs);
  EXPECT_STREQ(log_phone.fs().fs_type(), "logfs");
  EXPECT_STREQ(PhoneFsTypeName(PhoneFsType::kExtFs), "Ext4");
  EXPECT_STREQ(PhoneFsTypeName(PhoneFsType::kLogFs), "F2FS");
}

TEST(PhoneTest, FillStaticDataReachesUtilization) {
  Phone phone(MakeMotoE8(kScale, 1), PhoneFsType::kExtFs);
  ASSERT_TRUE(phone.FillStaticData(0.5).ok());
  EXPECT_NEAR(phone.device().ftl().Utilization(), 0.5, 0.08);
  EXPECT_TRUE(phone.fs().Exists("system/os.img"));
}

TEST(PhoneTest, WearExperimentRecordsLevels) {
  Phone phone(MakeMotoE8(kScale, 1), PhoneFsType::kExtFs);
  ASSERT_TRUE(phone.FillStaticData(0.4).ok());
  const PhoneWearOutcome out =
      RunPhoneWearExperiment(phone, SmallAttack(), 3, SimDuration::Hours(500));
  ASSERT_GE(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[0].from_level, 1u);
  EXPECT_EQ(out.rows[0].to_level, 2u);
  EXPECT_GT(out.rows[0].app_bytes, 0u);
  EXPECT_GT(out.rows[0].hours, 0.0);
  EXPECT_FALSE(out.bricked);
}

TEST(PhoneTest, F2fsNeedsLessAppIoPerLevel) {
  Phone ext_phone(MakeMotoE8(kScale, 1), PhoneFsType::kExtFs);
  ASSERT_TRUE(ext_phone.FillStaticData(0.4).ok());
  const PhoneWearOutcome ext_out =
      RunPhoneWearExperiment(ext_phone, SmallAttack(), 3, SimDuration::Hours(500));
  Phone log_phone(MakeMotoE8(kScale, 1), PhoneFsType::kLogFs);
  ASSERT_TRUE(log_phone.FillStaticData(0.4).ok());
  const PhoneWearOutcome log_out =
      RunPhoneWearExperiment(log_phone, SmallAttack(), 3, SimDuration::Hours(500));
  ASSERT_GE(ext_out.rows.size(), 2u);
  ASSERT_GE(log_out.rows.size(), 2u);
  // Figure 4: F2FS needs roughly half the app I/O per level.
  const double ratio = static_cast<double>(log_out.rows[1].app_bytes) /
                       static_cast<double>(ext_out.rows[1].app_bytes);
  EXPECT_LT(ratio, 0.75);
  EXPECT_GT(ratio, 0.3);
}

TEST(PhoneTest, BudgetPhoneBricksWithoutRows) {
  Phone phone(MakeBlu512(SimScale{16, 16}, 1), PhoneFsType::kExtFs);
  AttackAppConfig cfg;
  cfg.file_count = 1;
  cfg.file_bytes = 1 * kMiB;
  cfg.write_bytes = 64 * 1024;
  const PhoneWearOutcome out =
      RunPhoneWearExperiment(phone, cfg, 11, SimDuration::Hours(5000));
  EXPECT_TRUE(out.bricked);
  EXPECT_TRUE(out.rows.empty()) << "no health reporting on budget phones";
  EXPECT_GT(out.hours_to_brick, 0.0);
}

TEST(PhoneTest, DetectionExperimentAggressiveFlagged) {
  Phone phone(MakeMotoE8(SimScale{64, 1}, 1), PhoneFsType::kExtFs);
  // Start mid-morning so the attack runs on battery with screen bursts.
  phone.system().AdvanceIdle(SimDuration::Hours(9));
  const DetectionOutcome out =
      RunDetectionExperiment(phone, AttackPolicy::kAggressive, SimDuration::Hours(2));
  EXPECT_GT(out.bytes_written, 0u);
  EXPECT_TRUE(out.detection.power_flagged);
  EXPECT_TRUE(out.detection.process_flagged);
}

TEST(PhoneTest, DetectionExperimentStealthClean) {
  Phone phone(MakeMotoE8(SimScale{64, 1}, 1), PhoneFsType::kExtFs);
  phone.system().AdvanceIdle(SimDuration::Hours(9));
  const DetectionOutcome out =
      RunDetectionExperiment(phone, AttackPolicy::kStealth, SimDuration::Hours(24));
  EXPECT_GT(out.bytes_written, 0u) << "stealth window opens overnight";
  EXPECT_FALSE(out.detection.power_flagged);
  EXPECT_FALSE(out.detection.process_flagged);
  EXPECT_NEAR(out.stealth_window_fraction, 0.3125, 0.01);
}

}  // namespace
}  // namespace flashsim
