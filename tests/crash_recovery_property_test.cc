// Randomized crash-recovery property sweep (the tentpole harness).
//
// Each run is one deterministic (seed, cut) experiment via RunCrashScenario:
// a randomized workload against a real device + file system, mirrored into a
// shadow model of acknowledged state, power cut at a seeded destructive-op
// index, remount, and the three properties checked — acknowledged-durable
// data intact, FTL/fs invariants hold, wear accounting monotonic. A failing
// run prints the one-line crash_soak command that replays it exactly.
//
// The sweep covers {PageMapFtl, HybridFtl} x {LogFs, ExtFs, CowFs} x all
// three workload mixes for >= 500 randomized runs in total, plus a dedicated
// 504-run CowFs sweep asserting its stronger zero-repair contract.

#include <gtest/gtest.h>

#include "src/crashlab/crash_harness.h"

namespace flashsim {
namespace {

constexpr FtlKind kFtls[] = {FtlKind::kPageMap, FtlKind::kHybrid};
constexpr FsKind kFss[] = {FsKind::kLogFs, FsKind::kExtFs, FsKind::kCowFs};
constexpr CrashWorkload kWorkloads[] = {CrashWorkload::kMixed,
                                        CrashWorkload::kOverwrite,
                                        CrashWorkload::kSyncHeavy};

// A clean shutdown (fsync everything, no cut) must remount to the exact
// pre-shutdown namespace on every configuration.
TEST(CrashRecoveryPropertyTest, CleanRemountRestoresNamespaceExactly) {
  for (const FtlKind ftl : kFtls) {
    for (const FsKind fs : kFss) {
      CrashSpec spec;
      spec.ftl = ftl;
      spec.fs = fs;
      spec.workload = CrashWorkload::kMixed;
      spec.seed = 7;
      spec.ops = 200;
      spec.no_cut = true;
      const CrashRunResult r = RunCrashScenario(spec);
      EXPECT_TRUE(r.ok) << r.failure << "\n  repro: " << r.repro;
      EXPECT_FALSE(r.cut_fired);
      EXPECT_EQ(r.report.torn_pages_discarded, 0u);
    }
  }
}

// Cutting on the very first destructive NAND operation: recovery from an
// (almost) empty device, where namespaces are small and edge cases sharp.
TEST(CrashRecoveryPropertyTest, CutOnFirstDestructiveOp) {
  for (const FtlKind ftl : kFtls) {
    for (const FsKind fs : kFss) {
      CrashSpec spec;
      spec.ftl = ftl;
      spec.fs = fs;
      spec.seed = 11;
      spec.ops = 50;
      spec.cut_op = 1;
      const CrashRunResult r = RunCrashScenario(spec);
      EXPECT_TRUE(r.ok) << r.failure << "\n  repro: " << r.repro;
      EXPECT_TRUE(r.cut_fired);
    }
  }
}

// The main sweep: >= 500 randomized (seed, cut) runs across the full
// {ftl} x {fs} x {workload} grid. Zero acknowledged-data loss, zero
// invariant violations, wear monotonic — on every single run.
TEST(CrashRecoveryPropertyTest, RandomizedSweepFiveHundredRuns) {
  uint64_t runs = 0;
  uint64_t cuts_fired = 0;
  uint64_t torn_pages = 0;
  for (const FtlKind ftl : kFtls) {
    for (const FsKind fs : kFss) {
      for (uint64_t i = 0; i < 126; ++i) {
        CrashSpec spec;
        spec.ftl = ftl;
        spec.fs = fs;
        spec.workload = kWorkloads[i % 3];
        spec.seed = 1000 + i;
        spec.ops = 300;
        spec.cut_window = 3000;
        const CrashRunResult r = RunCrashScenario(spec);
        ASSERT_TRUE(r.ok) << FtlKindName(ftl) << "/" << FsKindName(fs)
                          << " seed " << spec.seed << ": " << r.failure
                          << "\n  repro: " << r.repro;
        ++runs;
        cuts_fired += r.cut_fired ? 1 : 0;
        torn_pages += r.report.torn_pages_discarded;
      }
    }
  }
  EXPECT_GE(runs, 500u);
  // The sweep must actually be exercising crashes, not clean shutdowns: most
  // cut windows land inside the workload, and torn pages do occur.
  EXPECT_GT(cuts_fired, runs / 2);
  EXPECT_GT(torn_pages, 0u);
}

// Crash under queued submission: the event engine is a timing overlay, and
// the power cut triggers on a destructive-NAND-op index, not a wall-clock
// time. The same (seed, cut) scenario must therefore recover to the
// *identical* post-recovery state whether the device runs the flat model or
// a multi-channel deep queue — same resolved cut, same acknowledged-op
// count, same torn-page accounting, same recovery counters.
TEST(CrashRecoveryPropertyTest, QueuedCrashRecoversToSameStateAsFlat) {
  uint64_t cuts_fired = 0;
  for (const FtlKind ftl : kFtls) {
    for (const FsKind fs : kFss) {
      for (uint64_t i = 0; i < 12; ++i) {
        CrashSpec flat;
        flat.ftl = ftl;
        flat.fs = fs;
        flat.workload = kWorkloads[i % 3];
        flat.seed = 7000 + i;
        flat.ops = 200;
        flat.cut_window = 2000;
        CrashSpec queued = flat;
        queued.channels = 2;
        queued.queue_depth = 8;
        const CrashRunResult a = RunCrashScenario(flat);
        const CrashRunResult b = RunCrashScenario(queued);
        ASSERT_TRUE(a.ok) << a.failure << "\n  repro: " << a.repro;
        ASSERT_TRUE(b.ok) << b.failure << "\n  repro: " << b.repro;
        EXPECT_EQ(a.cut_fired, b.cut_fired);
        EXPECT_EQ(a.resolved_cut_op, b.resolved_cut_op);
        EXPECT_EQ(a.ops_acknowledged, b.ops_acknowledged);
        EXPECT_EQ(RecoveryReportJson(a.report), RecoveryReportJson(b.report))
            << FtlKindName(ftl) << "/" << FsKindName(fs) << " seed "
            << flat.seed;
        cuts_fired += b.cut_fired ? 1 : 0;
      }
    }
  }
  // The differential must be exercising real crashes, not clean runs.
  EXPECT_GT(cuts_fired, 0u);
}

// Randomized queued-crash sweep: all three properties (durability, integrity,
// wear monotonicity) hold when power is cut under async multi-channel
// submission, including cuts landing inside a queued batch.
TEST(CrashRecoveryPropertyTest, QueuedSubmissionRandomizedSweep) {
  uint64_t runs = 0;
  uint64_t cuts_fired = 0;
  for (const FtlKind ftl : kFtls) {
    for (const FsKind fs : kFss) {
      for (uint64_t i = 0; i < 16; ++i) {
        CrashSpec spec;
        spec.ftl = ftl;
        spec.fs = fs;
        spec.workload = kWorkloads[i % 3];
        spec.seed = 8000 + i;
        spec.ops = 250;
        spec.cut_window = 2500;
        spec.channels = 1 + static_cast<uint32_t>(i % 4);
        spec.queue_depth = 1u << (i % 6);  // 1..32
        const CrashRunResult r = RunCrashScenario(spec);
        ASSERT_TRUE(r.ok) << FtlKindName(ftl) << "/" << FsKindName(fs)
                          << " seed " << spec.seed << " channels "
                          << spec.channels << " depth " << spec.queue_depth
                          << ": " << r.failure << "\n  repro: " << r.repro;
        ++runs;
        cuts_fired += r.cut_fired ? 1 : 0;
      }
    }
  }
  EXPECT_GE(runs, 64u);
  EXPECT_GT(cuts_fired, runs / 2);
}

// CowFs's contract is strictly stronger than ExtFs/LogFs: every on-media
// state is a valid committed prefix, so no mount may ever repair anything —
// zero fsck repairs, zero orphan files, zero reclaimed blocks — and the
// recovered namespace must be exactly an admissible committed prefix (the
// harness checks admissibility; a repair count > 0 fails the run inside
// RunCrashScenario too). 504 randomized (seed, cut) runs across both FTLs
// and all workload mixes, every fourth run under a multi-channel deep queue.
TEST(CrashRecoveryPropertyTest, CowFsZeroRepairSweepFiveHundredRuns) {
  uint64_t runs = 0;
  uint64_t cuts_fired = 0;
  for (const FtlKind ftl : kFtls) {
    for (uint64_t i = 0; i < 252; ++i) {
      CrashSpec spec;
      spec.ftl = ftl;
      spec.fs = FsKind::kCowFs;
      spec.workload = kWorkloads[i % 3];
      spec.seed = 20000 + i;
      spec.ops = 300;
      spec.cut_window = 3000;
      if (i % 4 == 3) {
        spec.channels = 2;
        spec.queue_depth = 8;
      }
      const CrashRunResult r = RunCrashScenario(spec);
      ASSERT_TRUE(r.ok) << FtlKindName(ftl) << "/cowfs seed " << spec.seed
                        << ": " << r.failure << "\n  repro: " << r.repro;
      EXPECT_EQ(r.report.fsck_repairs, 0u) << r.repro;
      EXPECT_EQ(r.report.orphan_files, 0u) << r.repro;
      EXPECT_EQ(r.report.orphan_blocks, 0u) << r.repro;
      ++runs;
      cuts_fired += r.cut_fired ? 1 : 0;
    }
  }
  EXPECT_EQ(runs, 504u);
  // Most cut windows must land inside the workload: this is a crash sweep,
  // not a clean-shutdown sweep.
  EXPECT_GT(cuts_fired, runs / 2);
}

}  // namespace
}  // namespace flashsim
