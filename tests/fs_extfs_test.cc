#include "src/fs/extfs.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace flashsim {
namespace {

class ExtFsTest : public ::testing::Test {
 protected:
  ExtFsTest() : device_(MakeDurableDevice()), fs_(*device_) {}
  std::unique_ptr<FlashDevice> device_;
  ExtFs fs_;
};

TEST_F(ExtFsTest, TypeName) { EXPECT_STREQ(fs_.fs_type(), "extfs"); }

TEST_F(ExtFsTest, OverwriteIsInPlace) {
  ASSERT_TRUE(fs_.Create("f").ok());
  ASSERT_TRUE(fs_.Write("f", 0, 4096, true).ok());
  const uint64_t data_after_first = fs_.stats().device_data_bytes;
  // Rewriting the same file block must not allocate new space (in-place).
  const uint64_t free_before = fs_.FreeBytes();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fs_.Write("f", 0, 4096, true).ok());
  }
  EXPECT_EQ(fs_.FreeBytes(), free_before);
  EXPECT_EQ(fs_.stats().device_data_bytes, data_after_first + 50 * 4096);
}

TEST_F(ExtFsTest, JournalBatchingKeepsWaNearOne) {
  ASSERT_TRUE(fs_.Create("f").ok());
  // 16 MiB of 4 KiB sync rewrites over a 1 MiB region.
  for (int i = 0; i < 4096; ++i) {
    ASSERT_TRUE(fs_.Write("f", static_cast<uint64_t>(i % 256) * 4096, 4096, true).ok());
  }
  const double wa = fs_.stats().FsWriteAmplification();
  EXPECT_GE(wa, 1.0);
  EXPECT_LT(wa, 1.10) << "ext-style journaling must not double sync-write I/O";
}

TEST_F(ExtFsTest, FsyncCommitsJournal) {
  ASSERT_TRUE(fs_.Create("f").ok());
  ASSERT_TRUE(fs_.Write("f", 0, 4096, false).ok());
  const uint64_t journal_before = fs_.stats().device_journal_bytes;
  ASSERT_TRUE(fs_.Fsync("f").ok());
  EXPECT_GT(fs_.stats().device_journal_bytes, journal_before);
}

TEST_F(ExtFsTest, MetadataCheckpointEventuallyWrites) {
  ASSERT_TRUE(fs_.Create("f").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(fs_.Write("f", 0, 4096, false).ok());
    ASSERT_TRUE(fs_.Fsync("f").ok());
  }
  EXPECT_GT(fs_.stats().device_metadata_bytes, 0u)
      << "periodic checkpoint should write metadata in place";
}

TEST_F(ExtFsTest, SequentialWriteAllocatesContiguously) {
  ASSERT_TRUE(fs_.Create("f").ok());
  // A large sequential write should reach the device as few large requests,
  // visible as high throughput (no per-4KiB overhead).
  const SimTime before = device_->clock().Now();
  ASSERT_TRUE(fs_.Write("f", 0, 8 * 1024 * 1024, false).ok());
  const double seconds = (device_->clock().Now() - before).ToSecondsF();
  const double mib_per_sec = 8.0 / seconds;
  // The tiny test device plateaus at ~19.5 MiB/s for coalesced requests but
  // only reaches ~13 MiB/s if every 4 KiB block pays its own request
  // overhead — so >15 proves the FS submitted large extents.
  EXPECT_GT(mib_per_sec, 15.0);
}

TEST_F(ExtFsTest, UnlinkDiscardsBlocksAtCommit) {
  ASSERT_TRUE(fs_.Create("f").ok());
  ASSERT_TRUE(fs_.Create("keep").ok());
  ASSERT_TRUE(fs_.Write("f", 0, 1024 * 1024, false).ok());
  const uint64_t valid_before = device_->ftl().Stats().valid_pages;
  ASSERT_TRUE(fs_.Unlink("f").ok());
  // The free + TRIM waits for the journal commit covering the unlink (a
  // crash before that commit must be able to roll the file back).
  EXPECT_EQ(device_->ftl().Stats().valid_pages, valid_before);
  ASSERT_TRUE(fs_.Fsync("keep").ok());  // forces the commit
  EXPECT_LT(device_->ftl().Stats().valid_pages, valid_before);
}

TEST_F(ExtFsTest, SpaceReusedAfterUnlink) {
  ASSERT_TRUE(fs_.Create("a").ok());
  ASSERT_TRUE(fs_.Write("a", 0, 2 * 1024 * 1024, false).ok());
  const uint64_t free_after_a = fs_.FreeBytes();
  ASSERT_TRUE(fs_.Unlink("a").ok());
  ASSERT_TRUE(fs_.Create("b").ok());
  // The unlinked blocks become reusable at the commit covering the unlink.
  ASSERT_TRUE(fs_.Fsync("b").ok());
  ASSERT_TRUE(fs_.Write("b", 0, 2 * 1024 * 1024, false).ok());
  EXPECT_EQ(fs_.FreeBytes(), free_after_a);
}

TEST_F(ExtFsTest, SparseFileMiddleWrite) {
  ASSERT_TRUE(fs_.Create("f").ok());
  // Write at a large offset directly; the hole costs nothing.
  const uint64_t free_before = fs_.FreeBytes();
  ASSERT_TRUE(fs_.Write("f", 10 * 1024 * 1024, 4096, false).ok());
  EXPECT_EQ(fs_.FileSize("f").value(), 10 * 1024 * 1024 + 4096u);
  EXPECT_EQ(free_before - fs_.FreeBytes(), 4096u);
}

TEST_F(ExtFsTest, JournalWrapsAround) {
  ExtFsConfig cfg;
  cfg.journal_blocks = 8;  // tiny ring
  cfg.journal_batch_bytes = 4096;
  auto device = MakeDurableDevice();
  ExtFs fs(*device, cfg);
  ASSERT_TRUE(fs.Create("f").ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(fs.Write("f", 0, 4096, true).ok());
  }
  EXPECT_GT(fs.stats().device_journal_bytes, 8u * 4096);
}

}  // namespace
}  // namespace flashsim
