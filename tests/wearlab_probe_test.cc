#include "src/wearlab/bandwidth_probe.h"

#include <gtest/gtest.h>

#include "src/simcore/units.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

TEST(BandwidthProbeTest, Figure1SizesSpan) {
  const auto sizes = Figure1RequestSizes();
  ASSERT_FALSE(sizes.empty());
  EXPECT_EQ(sizes.front(), 512u);
  EXPECT_EQ(sizes.back(), 16 * kMiB);
  for (size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], sizes[i - 1] * 2);
  }
}

TEST(BandwidthProbeTest, MeasuresPositiveBandwidth) {
  auto device = MakeDurableDevice();
  BandwidthProbeConfig cfg;
  cfg.total_bytes = 2 * kMiB;
  cfg.region_bytes = 8 * kMiB;
  const BandwidthResult r = RunBandwidthProbe(*device, cfg);
  ASSERT_TRUE(r.status.ok());
  EXPECT_GT(r.mib_per_sec, 0.0);
  EXPECT_EQ(r.bytes_moved, 2 * kMiB);
  EXPECT_GT(r.elapsed.nanos(), 0);
}

TEST(BandwidthProbeTest, LargerRequestsFasterOnParallelDevice) {
  auto dev_small = MakeDurableDevice();
  auto dev_large = MakeDurableDevice();
  BandwidthProbeConfig cfg;
  cfg.region_bytes = 8 * kMiB;
  cfg.total_bytes = 4 * kMiB;
  cfg.request_bytes = 4096;
  const double small = RunBandwidthProbe(*dev_small, cfg).mib_per_sec;
  cfg.request_bytes = 512 * 1024;
  const double large = RunBandwidthProbe(*dev_large, cfg).mib_per_sec;
  EXPECT_GT(large, small);
}

TEST(BandwidthProbeTest, RegionClampedToCapacity) {
  auto device = MakeDurableDevice();
  BandwidthProbeConfig cfg;
  cfg.region_bytes = 100 * kTiB;  // absurd; must clamp
  cfg.total_bytes = 1 * kMiB;
  EXPECT_TRUE(RunBandwidthProbe(*device, cfg).status.ok());
}

TEST(BandwidthProbeTest, TinyRegionRejected) {
  auto device = MakeDurableDevice();
  BandwidthProbeConfig cfg;
  cfg.request_bytes = 16 * kMiB;
  cfg.region_bytes = 4096;
  const BandwidthResult r = RunBandwidthProbe(*device, cfg);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

TEST(BandwidthProbeTest, ReadProbePrefillsRegion) {
  auto device = MakeDurableDevice();
  BandwidthProbeConfig cfg;
  cfg.kind = IoKind::kRead;
  cfg.pattern = AccessPattern::kRandom;
  cfg.total_bytes = 1 * kMiB;
  cfg.region_bytes = 4 * kMiB;
  const BandwidthResult r = RunBandwidthProbe(*device, cfg);
  ASSERT_TRUE(r.status.ok());
  EXPECT_GT(r.mib_per_sec, 0.0);
}

TEST(BandwidthProbeTest, PatternNames) {
  EXPECT_STREQ(AccessPatternName(AccessPattern::kSequential), "sequential");
  EXPECT_STREQ(AccessPatternName(AccessPattern::kRandom), "random");
}

TEST(BandwidthProbeTest, DeterministicForSameSeed) {
  auto d1 = MakeDurableDevice();
  auto d2 = MakeDurableDevice();
  BandwidthProbeConfig cfg;
  cfg.pattern = AccessPattern::kRandom;
  cfg.total_bytes = 2 * kMiB;
  cfg.region_bytes = 8 * kMiB;
  const double b1 = RunBandwidthProbe(*d1, cfg).mib_per_sec;
  const double b2 = RunBandwidthProbe(*d2, cfg).mib_per_sec;
  EXPECT_DOUBLE_EQ(b1, b2);
}

}  // namespace
}  // namespace flashsim
