#include "src/simcore/event_log.h"

#include <gtest/gtest.h>

namespace flashsim {
namespace {

TEST(EventLogTest, AppendAndSize) {
  EventLog log;
  log.Append(SimTime(1), EventSeverity::kInfo, "ftl", "hello");
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.events().front().message, "hello");
  EXPECT_EQ(log.events().front().component, "ftl");
}

TEST(EventLogTest, RingDropsOldest) {
  EventLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.Append(SimTime(i), EventSeverity::kInfo, "c", std::to_string(i));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.events().front().message, "2");
  EXPECT_EQ(log.events().back().message, "4");
}

TEST(EventLogTest, FilterByComponentAndSeverity) {
  EventLog log;
  log.Append(SimTime(), EventSeverity::kDebug, "ftl", "d");
  log.Append(SimTime(), EventSeverity::kWarning, "ftl", "w");
  log.Append(SimTime(), EventSeverity::kError, "emmc", "e");
  const auto ftl_warnings = log.Filter("ftl", EventSeverity::kWarning);
  ASSERT_EQ(ftl_warnings.size(), 1u);
  EXPECT_EQ(ftl_warnings[0].message, "w");
  EXPECT_EQ(log.Filter("ftl").size(), 2u);
  EXPECT_EQ(log.Filter("nope").size(), 0u);
}

TEST(EventLogTest, CountAtSeverity) {
  EventLog log;
  log.Append(SimTime(), EventSeverity::kError, "a", "1");
  log.Append(SimTime(), EventSeverity::kError, "b", "2");
  log.Append(SimTime(), EventSeverity::kInfo, "c", "3");
  EXPECT_EQ(log.CountAtSeverity(EventSeverity::kError), 2u);
  EXPECT_EQ(log.CountAtSeverity(EventSeverity::kDebug), 0u);
}

TEST(EventLogTest, ClearResets) {
  EventLog log(2);
  log.Append(SimTime(), EventSeverity::kInfo, "a", "1");
  log.Append(SimTime(), EventSeverity::kInfo, "a", "2");
  log.Append(SimTime(), EventSeverity::kInfo, "a", "3");
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLogTest, SeverityNames) {
  EXPECT_STREQ(EventSeverityName(EventSeverity::kDebug), "DEBUG");
  EXPECT_STREQ(EventSeverityName(EventSeverity::kError), "ERROR");
}

}  // namespace
}  // namespace flashsim
