// Test-first harness for the event-engine degenerate-mode invariant
// (DESIGN.md §15): with channels=1 and depth=1 the discrete-event queue
// model must be bit-exactly the flat synchronous model — same simulated
// clock, same wear, same meters, same latency digests, same campaign report
// bytes — and scaling the topology must never slow a workload down (more
// channels and deeper queues are monotone improvements for independent ops).

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/blockdev/io_queue.h"
#include "src/campaign/report.h"
#include "src/campaign/runner.h"
#include "src/campaign/spec.h"
#include "src/device/flash_device.h"
#include "src/simcore/snapshot.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

std::vector<uint8_t> Serialize(const FlashDevice& device) {
  SnapshotWriter w;
  device.SaveState(w);
  return w.buffer();
}

// Deterministic mixed workload: page-aligned write batches (the bulk path),
// scattered single writes, reads, discards, and sub-page writes, all from
// one LCG stream so two devices can be driven identically.
class RequestStream {
 public:
  explicit RequestStream(uint64_t seed) : state_(seed * 2654435761u + 1) {}

  uint64_t Next(uint64_t bound) {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return (state_ >> 17) % bound;
  }

 private:
  uint64_t state_;
};

// Drives `device` with `ops` randomized operations from `seed`. Every
// mutation of the stream depends only on the seed, never on the device, so
// flat and event devices see identical request sequences.
void DriveRandomWorkload(FlashDevice& device, uint64_t seed, int ops) {
  RequestStream rng(seed);
  const uint64_t capacity = device.CapacityBytes();
  const uint64_t page = device.PageSizeBytes();
  const uint64_t pages = capacity / page;
  std::vector<IoRequest> batch;
  for (int op = 0; op < ops; ++op) {
    const uint64_t kind = rng.Next(10);
    if (kind < 5) {
      // Page-aligned write batch of 1..32 requests, 1..4 pages each.
      const size_t n = 1 + rng.Next(32);
      batch.clear();
      for (size_t i = 0; i < n; ++i) {
        const uint64_t len = (1 + rng.Next(4)) * page;
        const uint64_t off = rng.Next(pages - 4) * page;
        batch.push_back(IoRequest{IoKind::kWrite, off, len});
      }
      const BatchCompletion done = device.SubmitBatch(batch.data(), batch.size());
      ASSERT_TRUE(done.status.ok()) << done.status.message();
    } else if (kind < 7) {
      // Sub-page write (read-modify-write path).
      const uint64_t off = rng.Next(capacity - 512);
      ASSERT_TRUE(device.Submit(IoRequest{IoKind::kWrite, off, 512}).ok());
    } else if (kind < 9) {
      const uint64_t off = rng.Next(pages - 2) * page;
      ASSERT_TRUE(device.Submit(IoRequest{IoKind::kRead, off, 2 * page}).ok());
    } else {
      const uint64_t off = rng.Next(pages - 2) * page;
      ASSERT_TRUE(device.Submit(IoRequest{IoKind::kDiscard, off, page}).ok());
    }
  }
}

TEST(LatencyEquivalenceTest, DegenerateEventEngineIsBitExactWithFlatModel) {
  for (uint64_t seed : {1ull, 7ull, 99ull}) {
    std::unique_ptr<FlashDevice> flat = MakeTinyDevice(seed);
    std::unique_ptr<FlashDevice> event = MakeTinyDevice(seed);
    event->ConfigureQueue(1, 1, /*force_event_engine=*/true);
    ASSERT_TRUE(event->UsesEventEngine());
    ASSERT_FALSE(flat->UsesEventEngine());
    flat->EnableLatencyDigests();
    event->EnableLatencyDigests();

    DriveRandomWorkload(*flat, seed, 300);
    DriveRandomWorkload(*event, seed, 300);

    // The full serialized device state — FTL mapping, NAND wear planes, RNG,
    // clock, meters, latency digests — must agree byte for byte.
    EXPECT_EQ(Serialize(*flat), Serialize(*event)) << "seed " << seed;
    EXPECT_EQ(flat->clock().Now().nanos(), event->clock().Now().nanos());
    EXPECT_EQ(flat->write_latency_digest()->count(),
              event->write_latency_digest()->count());
    EXPECT_EQ(flat->write_latency_digest()->Quantile(0.99),
              event->write_latency_digest()->Quantile(0.99));
  }
}

TEST(LatencyEquivalenceTest, HybridDeviceDegenerateEquivalence) {
  // The hybrid FTL takes a different WriteBatch path (SLC cache + merges);
  // the timing overlay must still be bit-exact.
  for (uint64_t seed : {3ull, 11ull}) {
    FlashDeviceConfig cfg;
    cfg.name = "tiny-hybrid";
    cfg.perf.per_request_overhead = SimDuration::Micros(100);
    cfg.perf.bus_mib_per_sec = 100.0;
    cfg.perf.effective_parallelism = 4;
    auto flat = std::make_unique<FlashDevice>(cfg, MakeTinyHybrid(seed));
    auto event = std::make_unique<FlashDevice>(cfg, MakeTinyHybrid(seed));
    event->ConfigureQueue(1, 1, /*force_event_engine=*/true);
    DriveRandomWorkload(*flat, seed, 200);
    DriveRandomWorkload(*event, seed, 200);
    EXPECT_EQ(Serialize(*flat), Serialize(*event)) << "seed " << seed;
  }
}

// Wear, mapping, and request accounting are a pure function of the request
// stream — the queue is a timing overlay — so any topology must leave
// identical wear state; only the clock may differ.
TEST(LatencyEquivalenceTest, TopologyChangesTimingOnly) {
  std::unique_ptr<FlashDevice> base = MakeTinyDevice(5);
  std::unique_ptr<FlashDevice> wide = MakeTinyDevice(5);
  wide->ConfigureQueue(4, 16, false);
  DriveRandomWorkload(*base, 5, 200);
  DriveRandomWorkload(*wide, 5, 200);
  const FtlStats a = base->ftl().Stats();
  const FtlStats b = wide->ftl().Stats();
  EXPECT_EQ(a.host_pages_written, b.host_pages_written);
  EXPECT_EQ(a.nand_pages_written, b.nand_pages_written);
  EXPECT_EQ(base->HostBytesWritten(), wide->HostBytesWritten());
  // The wide device overlaps requests, so it can only be faster.
  EXPECT_LE(wide->clock().Now().nanos(), base->clock().Now().nanos());
}

SimTime FinalClockFor(uint32_t channels, uint32_t depth, uint64_t seed) {
  std::unique_ptr<FlashDevice> device = MakeTinyDevice(seed);
  device->ConfigureQueue(channels, depth, /*force_event_engine=*/true);
  DriveRandomWorkload(*device, seed, 200);
  return device->clock().Now();
}

TEST(LatencyEquivalenceTest, MoreChannelsNeverSlower) {
  for (uint64_t seed : {2ull, 13ull}) {
    const int64_t c1 = FinalClockFor(1, 8, seed).nanos();
    const int64_t c2 = FinalClockFor(2, 8, seed).nanos();
    const int64_t c4 = FinalClockFor(4, 8, seed).nanos();
    EXPECT_LE(c2, c1) << "seed " << seed;
    EXPECT_LE(c4, c2) << "seed " << seed;
  }
}

TEST(LatencyEquivalenceTest, DeeperQueueNeverSlower) {
  for (uint64_t seed : {2ull, 13ull}) {
    const int64_t d1 = FinalClockFor(4, 1, seed).nanos();
    const int64_t d4 = FinalClockFor(4, 4, seed).nanos();
    const int64_t d16 = FinalClockFor(4, 16, seed).nanos();
    EXPECT_LE(d4, d1) << "seed " << seed;
    EXPECT_LE(d16, d4) << "seed " << seed;
  }
}

// Direct IoQueue properties over randomized op sets, independent of the
// device stack.
TEST(IoQueueTest, DegenerateScheduleIsSerialSum) {
  RequestStream rng(17);
  std::vector<QueuedOp> ops;
  SimDuration sum;
  for (int i = 0; i < 200; ++i) {
    const SimDuration s = SimDuration::Micros(1 + rng.Next(500));
    ops.push_back(QueuedOp{rng.Next(1 << 20), s});
    sum += s;
  }
  IoQueue q(1, 1);
  std::vector<SimDuration> lat(ops.size());
  const SimDuration makespan = q.Run(ops.data(), ops.size(), lat.data());
  EXPECT_EQ(makespan.nanos(), sum.nanos());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(lat[i].nanos(), ops[i].service.nanos()) << "op " << i;
  }
}

TEST(IoQueueTest, MakespanMonotoneInDepthAndPowerOfTwoChannels) {
  for (uint64_t seed : {1ull, 23ull, 42ull}) {
    RequestStream rng(seed);
    std::vector<QueuedOp> ops;
    for (int i = 0; i < 300; ++i) {
      ops.push_back(
          QueuedOp{rng.Next(1 << 16), SimDuration::Micros(1 + rng.Next(900))});
    }
    for (uint32_t channels : {1u, 2u, 4u, 8u}) {
      int64_t prev = -1;
      for (uint32_t depth : {1u, 2u, 4u, 8u, 32u}) {
        IoQueue q(channels, depth);
        const int64_t makespan = q.Run(ops.data(), ops.size()).nanos();
        if (prev >= 0) {
          EXPECT_LE(makespan, prev)
              << "channels " << channels << " depth " << depth;
        }
        prev = makespan;
      }
    }
    for (uint32_t depth : {8u, 64u}) {
      int64_t prev = -1;
      for (uint32_t channels : {1u, 2u, 4u, 8u, 16u}) {
        IoQueue q(channels, depth);
        const int64_t makespan = q.Run(ops.data(), ops.size()).nanos();
        if (prev >= 0) {
          EXPECT_LE(makespan, prev)
              << "channels " << channels << " depth " << depth;
        }
        prev = makespan;
      }
    }
  }
}

TEST(IoQueueTest, QueueDepthBoundsConcurrency) {
  // depth D on one channel cannot beat serial (channel conflict), but D
  // ops on D channels with D slots all run concurrently: makespan = max.
  std::vector<QueuedOp> ops;
  for (uint64_t i = 0; i < 8; ++i) {
    ops.push_back(QueuedOp{i, SimDuration::Micros(100)});
  }
  IoQueue wide(8, 8);
  EXPECT_EQ(wide.Run(ops.data(), ops.size()).nanos(),
            SimDuration::Micros(100).nanos());
  // With depth 2 the 8 independent ops pipeline two at a time.
  IoQueue narrow(8, 2);
  EXPECT_EQ(narrow.Run(ops.data(), ops.size()).nanos(),
            SimDuration::Micros(400).nanos());
}

const char* kEquivalenceSpec = R"(
campaign latency_equiv seed=11 scale=64x64
workload wsmall pattern=random request=8KiB total=24MiB span=40%
workload wseq pattern=sequential request=64KiB total=24MiB span=40%
grid g layer=block metric=bandwidth devices=emmc8 workloads=wsmall,wseq batch=16ENGINE
)";

std::string CampaignReportFor(const std::string& engine_suffix) {
  std::string text = kEquivalenceSpec;
  const std::string needle = "ENGINE";
  text.replace(text.find(needle), needle.size(), engine_suffix);
  Result<CampaignSpec> spec = ParseCampaignSpec(text);
  EXPECT_TRUE(spec.ok()) << spec.status().message();
  CampaignRunOptions options;
  options.threads = 2;
  const CampaignOutcome outcome = RunCampaign(spec.value(), options);
  std::ostringstream json;
  CampaignJsonStream stream(json);
  stream.Begin(spec.value().name, spec.value().seed);
  for (const RunRecord& run : outcome.runs) {
    stream.AddRun(run);
  }
  stream.Finish();
  return json.str();
}

TEST(LatencyEquivalenceTest, CampaignReportsByteIdenticalAcrossEngines) {
  // engine=event forces the degenerate C=1/D=1 event path; the JSON report
  // (including the new latency percentile fields) must be byte-identical
  // with the flat default.
  const std::string flat = CampaignReportFor("");
  const std::string event = CampaignReportFor(" engine=event");
  EXPECT_EQ(flat, event);
  EXPECT_NE(flat.find("write_lat_p99_us"), std::string::npos);
}

}  // namespace
}  // namespace flashsim
