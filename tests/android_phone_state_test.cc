#include "src/android/phone_state.h"

#include <gtest/gtest.h>

namespace flashsim {
namespace {

SimTime AtClock(int64_t hour, int64_t minute = 0) {
  return SimTime((hour * 3600 + minute * 60) * 1000000000ll);
}

TEST(UsageScheduleTest, OvernightCharging) {
  UsageSchedule schedule;
  EXPECT_TRUE(schedule.StateAt(AtClock(0)).charging);
  EXPECT_TRUE(schedule.StateAt(AtClock(3)).charging);
  EXPECT_TRUE(schedule.StateAt(AtClock(6, 59)).charging);
  EXPECT_TRUE(schedule.StateAt(AtClock(23)).charging);
  EXPECT_FALSE(schedule.StateAt(AtClock(7)).charging);
  EXPECT_FALSE(schedule.StateAt(AtClock(12)).charging);
  EXPECT_FALSE(schedule.StateAt(AtClock(22, 59)).charging);
}

TEST(UsageScheduleTest, AsleepScreenOff) {
  UsageSchedule schedule;
  EXPECT_FALSE(schedule.StateAt(AtClock(2)).screen_on);
  EXPECT_FALSE(schedule.StateAt(AtClock(4, 30)).screen_on);
}

TEST(UsageScheduleTest, MorningSessionOnCharger) {
  UsageSchedule schedule;  // morning use 06:30-07:00 by default
  const PhoneState s = schedule.StateAt(AtClock(6, 45));
  EXPECT_TRUE(s.charging);
  EXPECT_TRUE(s.screen_on);
}

TEST(UsageScheduleTest, DaytimeScreenBursts) {
  UsageSchedule schedule;  // 6 on / 24 off within each 30-minute cycle
  EXPECT_TRUE(schedule.StateAt(AtClock(10, 2)).screen_on);
  EXPECT_FALSE(schedule.StateAt(AtClock(10, 10)).screen_on);
  EXPECT_TRUE(schedule.StateAt(AtClock(10, 31)).screen_on);
}

TEST(UsageScheduleTest, RepeatsDaily) {
  UsageSchedule schedule;
  for (int minute = 0; minute < 24 * 60; minute += 13) {
    const SimTime day0 = SimTime(minute * 60ll * 1000000000);
    const SimTime day3 = SimTime((minute * 60ll + 3 * 86400) * 1000000000);
    EXPECT_EQ(schedule.StateAt(day0).charging, schedule.StateAt(day3).charging);
    EXPECT_EQ(schedule.StateAt(day0).screen_on, schedule.StateAt(day3).screen_on);
  }
}

TEST(UsageScheduleTest, StealthWindowFraction) {
  UsageSchedule schedule;
  // 8 charging hours minus 30 morning minutes = 7.5h of 24 => 31.25%.
  EXPECT_NEAR(schedule.StealthWindowFraction(), 0.3125, 0.001);
}

TEST(UsageScheduleTest, NonWrappingChargeWindow) {
  UsageScheduleConfig cfg;
  cfg.charge_start_hour = 9;
  cfg.charge_end_hour = 17;  // daytime desk charger
  UsageSchedule schedule(cfg);
  EXPECT_TRUE(schedule.StateAt(AtClock(12)).charging);
  EXPECT_FALSE(schedule.StateAt(AtClock(20)).charging);
  EXPECT_FALSE(schedule.StateAt(AtClock(2)).charging);
}

TEST(UsageScheduleTest, AlwaysScreenOffConfig) {
  UsageScheduleConfig cfg;
  cfg.screen_on_minutes = 0;
  cfg.morning_use_minutes = 0;
  UsageSchedule schedule(cfg);
  for (int hour = 0; hour < 24; ++hour) {
    EXPECT_FALSE(schedule.StateAt(AtClock(hour)).screen_on);
  }
}

}  // namespace
}  // namespace flashsim
