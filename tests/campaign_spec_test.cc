#include "src/campaign/spec.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/simcore/rng.h"
#include "src/simcore/units.h"

namespace flashsim {
namespace {

const char kValidSpec[] = R"(
# comment
campaign demo seed=9 scale=8x2

workload w1 pattern=zipf request=8KiB total=1MiB span=25% theta=0.8 read_fraction=0.25 burst=16 idle=2ms
workload w2 pattern=strided request=64KiB total=4MiB span=512KiB start=1MiB stride=256KiB
workload hc pattern=hot-cold hot_fraction=0.2 hot_probability=0.8

grid bw layer=block metric=bandwidth devices=emmc8,samsung_s6 workloads=w1,w2
grid ph layer=phone metric=bandwidth devices=moto_e8 fs=ext4,f2fs workloads=w1 utilization=0.4 files=2x8MiB sync=0 batch=8
grid wear layer=block metric=wear scale=64x64 devices=emmc8 workloads=hc target_level=3 max_bytes=2GiB
)";

TEST(CampaignSpecTest, ParsesHeaderWorkloadsAndGrids) {
  const Result<CampaignSpec> parsed = ParseCampaignSpec(kValidSpec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const CampaignSpec& spec = parsed.value();

  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.scale.capacity_div, 8u);
  EXPECT_EQ(spec.scale.endurance_div, 2u);
  ASSERT_EQ(spec.workloads.size(), 3u);
  ASSERT_EQ(spec.grids.size(), 3u);

  const SyntheticWorkloadConfig* w1 = spec.FindWorkload("w1");
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w1->pattern, AccessPattern::kZipf);
  EXPECT_EQ(w1->request_bytes, 8 * kKiB);
  EXPECT_EQ(w1->total_bytes, 1 * kMiB);
  EXPECT_DOUBLE_EQ(w1->span_fraction, 0.25);
  EXPECT_DOUBLE_EQ(w1->zipf_theta, 0.8);
  EXPECT_DOUBLE_EQ(w1->read_fraction, 0.25);
  EXPECT_EQ(w1->burst_requests, 16u);
  EXPECT_EQ(w1->idle_time.nanos(), SimDuration::Millis(2).nanos());

  const SyntheticWorkloadConfig* w2 = spec.FindWorkload("w2");
  ASSERT_NE(w2, nullptr);
  EXPECT_EQ(w2->pattern, AccessPattern::kStrided);
  EXPECT_EQ(w2->span_bytes, 512 * kKiB);
  EXPECT_EQ(w2->start_offset, 1 * kMiB);
  EXPECT_EQ(w2->stride_bytes, 256 * kKiB);

  const SyntheticWorkloadConfig* hc = spec.FindWorkload("hc");
  ASSERT_NE(hc, nullptr);
  EXPECT_EQ(hc->pattern, AccessPattern::kHotCold);
  EXPECT_DOUBLE_EQ(hc->hot_fraction, 0.2);
  EXPECT_DOUBLE_EQ(hc->hot_probability, 0.8);

  const GridSpec& ph = spec.grids[1];
  EXPECT_EQ(ph.layer, RunLayer::kPhone);
  ASSERT_EQ(ph.filesystems.size(), 2u);
  EXPECT_EQ(ph.filesystems[0], PhoneFsType::kExtFs);
  EXPECT_EQ(ph.filesystems[1], PhoneFsType::kLogFs);
  EXPECT_DOUBLE_EQ(ph.utilization, 0.4);
  EXPECT_EQ(ph.file_count, 2u);
  EXPECT_EQ(ph.file_bytes, 8 * kMiB);
  EXPECT_FALSE(ph.sync);
  EXPECT_EQ(ph.batch_requests, 8u);

  const GridSpec& wear = spec.grids[2];
  EXPECT_EQ(wear.metric, RunMetric::kWear);
  EXPECT_EQ(wear.scale.capacity_div, 64u);
  EXPECT_EQ(wear.scale.endurance_div, 64u);
  EXPECT_EQ(wear.target_level, 3u);
  EXPECT_EQ(wear.max_bytes, 2 * kGiB);
}

TEST(CampaignSpecTest, GridsInheritCampaignScaleUnlessOverridden) {
  const Result<CampaignSpec> parsed = ParseCampaignSpec(kValidSpec);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().grids[0].scale.capacity_div, 8u);   // inherited
  EXPECT_EQ(parsed.value().grids[2].scale.capacity_div, 64u);  // overridden
}

TEST(CampaignSpecTest, ExpandRunsIsTheOrderedCrossProduct) {
  const Result<CampaignSpec> parsed = ParseCampaignSpec(kValidSpec);
  ASSERT_TRUE(parsed.ok());
  const std::vector<RunSpec> runs = ExpandRuns(parsed.value());
  // bw: 2 devices x 2 workloads; ph: 1 device x 2 fs x 1 workload; wear: 1.
  ASSERT_EQ(runs.size(), 4u + 2u + 1u);

  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].index, i);
    EXPECT_EQ(runs[i].seed, DeriveSeed(9, i)) << i;
  }
  std::set<uint64_t> seeds;
  for (const RunSpec& run : runs) {
    seeds.insert(run.seed);
  }
  EXPECT_EQ(seeds.size(), runs.size());

  EXPECT_EQ(runs[0].grid, "bw");
  EXPECT_EQ(runs[0].device, "emmc8");
  EXPECT_EQ(runs[0].workload.name, "w1");
  EXPECT_FALSE(runs[0].has_fs);
  EXPECT_EQ(runs[3].device, "samsung_s6");
  EXPECT_EQ(runs[3].workload.name, "w2");
  EXPECT_TRUE(runs[4].has_fs);
  EXPECT_EQ(runs[4].fs, PhoneFsType::kExtFs);
  EXPECT_EQ(runs[5].fs, PhoneFsType::kLogFs);
  EXPECT_EQ(runs[6].grid, "wear");
  EXPECT_EQ(runs[6].target_level, 3u);
}

TEST(CampaignSpecTest, KnownDeviceSlugsResolve) {
  for (const char* slug :
       {"usd16", "emmc8", "emmc16", "moto_e8", "samsung_s6", "blu512", "blu4"}) {
    const CampaignDevice* device = FindCampaignDevice(slug);
    ASSERT_NE(device, nullptr) << slug;
    EXPECT_EQ(device->slug, slug);
    EXPECT_FALSE(device->display_name.empty());
  }
  EXPECT_EQ(FindCampaignDevice("nope"), nullptr);
}

struct SpecError {
  const char* label;
  const char* text;
  const char* want_substring;
};

class CampaignSpecErrors : public ::testing::TestWithParam<SpecError> {};

TEST_P(CampaignSpecErrors, RejectedWithLineNumber) {
  const Result<CampaignSpec> parsed = ParseCampaignSpec(GetParam().text);
  ASSERT_FALSE(parsed.ok()) << GetParam().label;
  const std::string message = parsed.status().ToString();
  EXPECT_NE(message.find(GetParam().want_substring), std::string::npos)
      << GetParam().label << ": " << message;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CampaignSpecErrors,
    ::testing::Values(
        SpecError{"no_campaign", "workload w pattern=random\n", "no 'campaign' line"},
        SpecError{"no_grids", "campaign c\nworkload w pattern=random\n",
                  "defines no grids"},
        SpecError{"bad_pattern",
                  "campaign c\nworkload w pattern=spiral\n"
                  "grid g layer=block metric=bandwidth devices=emmc8 workloads=w\n",
                  "spec line 2"},
        SpecError{"unknown_device",
                  "campaign c\nworkload w pattern=random\n"
                  "grid g layer=block metric=bandwidth devices=ipod workloads=w\n",
                  "unknown device 'ipod'"},
        SpecError{"unknown_workload",
                  "campaign c\nworkload w pattern=random\n"
                  "grid g layer=block metric=bandwidth devices=emmc8 workloads=zz\n",
                  "undefined workload 'zz'"},
        SpecError{"fs_on_block_grid",
                  "campaign c\nworkload w pattern=random\n"
                  "grid g layer=block metric=bandwidth devices=emmc8 workloads=w "
                  "fs=ext4\n",
                  "fs= only applies"},
        SpecError{"wear_without_stop",
                  "campaign c\nworkload w pattern=random\n"
                  "grid g layer=block metric=wear devices=emmc8 workloads=w\n",
                  "spec line 3"},
        SpecError{"duplicate_workload",
                  "campaign c\nworkload w pattern=random\nworkload w pattern=random\n"
                  "grid g layer=block metric=bandwidth devices=emmc8 workloads=w\n",
                  "duplicate workload 'w'"},
        SpecError{"bad_key_value",
                  "campaign c\nworkload w pattern=random bogus\n"
                  "grid g layer=block metric=bandwidth devices=emmc8 workloads=w\n",
                  "expected key=value"}));

TEST(CampaignSpecTest, LoadFileReportsMissingPath) {
  const Result<CampaignSpec> parsed =
      LoadCampaignSpecFile("/nonexistent/campaign.spec");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace flashsim
