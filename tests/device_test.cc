#include "src/device/flash_device.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace flashsim {
namespace {

TEST(FlashDeviceTest, CapacityMatchesFtl) {
  auto device = MakeTinyDevice();
  EXPECT_EQ(device->CapacityBytes(), 25u * 128 * 4096);
  EXPECT_EQ(device->PageSizeBytes(), 4096u);
  EXPECT_FALSE(device->IsReadOnly());
}

TEST(FlashDeviceTest, RejectsBadRequests) {
  auto device = MakeTinyDevice();
  EXPECT_EQ(device->Submit({IoKind::kWrite, 0, 0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(device->Submit({IoKind::kWrite, device->CapacityBytes(), 4096})
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(device->Submit({IoKind::kWrite, device->CapacityBytes() - 4096, 8192})
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(FlashDeviceTest, WriteAdvancesClockAndMeters) {
  auto device = MakeTinyDevice();
  const SimTime before = device->clock().Now();
  Result<IoCompletion> done = device->Submit({IoKind::kWrite, 0, 4096});
  ASSERT_TRUE(done.ok());
  EXPECT_GT(device->clock().Now(), before);
  EXPECT_EQ(device->clock().Now() - before, done.value().service_time);
  EXPECT_EQ(device->HostBytesWritten(), 4096u);
  EXPECT_EQ(device->write_meter().operations(), 1u);
}

TEST(FlashDeviceTest, ReadAfterWrite) {
  auto device = MakeTinyDevice();
  ASSERT_TRUE(device->Submit({IoKind::kWrite, 4096, 8192}).ok());
  Result<IoCompletion> read = device->Submit({IoKind::kRead, 4096, 8192});
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(device->read_meter().total_bytes(), 8192u);
}

TEST(FlashDeviceTest, ReadOfUnwrittenRegionReturnsZeros) {
  auto device = MakeTinyDevice();
  // Reading a hole is not an error (acts as zero-fill) and costs no array time.
  EXPECT_TRUE(device->Submit({IoKind::kRead, 0, 4096}).ok());
}

TEST(FlashDeviceTest, SubPageWriteCostsReadModifyWrite) {
  auto device = MakeTinyDevice();
  ASSERT_TRUE(device->Submit({IoKind::kWrite, 0, 4096}).ok());
  const uint64_t reads_before = device->ftl().Stats().host_pages_read;
  // 512-byte write into a mapped page: a read-modify-write.
  ASSERT_TRUE(device->Submit({IoKind::kWrite, 512, 512}).ok());
  EXPECT_GT(device->ftl().Stats().host_pages_read, reads_before);
}

TEST(FlashDeviceTest, UnalignedWriteSpanningPages) {
  auto device = MakeTinyDevice();
  // 6 KiB write starting at 2 KiB touches pages 0 and 1 and ends mid-page 2?
  // offset 2048 length 6144 -> [2048, 8192): pages 0 and 1.
  ASSERT_TRUE(device->Submit({IoKind::kWrite, 2048, 6144}).ok());
  EXPECT_TRUE(device->ftl().Health().supported);
  EXPECT_TRUE(device->Submit({IoKind::kRead, 4096, 4096}).ok());
}

TEST(FlashDeviceTest, DiscardOnlyFullPages) {
  auto device = MakeTinyDevice();
  ASSERT_TRUE(device->Submit({IoKind::kWrite, 0, 3 * 4096}).ok());
  // Discard [2048, 10240): only page 1 ([4096,8192)) is fully covered.
  ASSERT_TRUE(device->Submit({IoKind::kDiscard, 2048, 8192}).ok());
  EXPECT_TRUE(device->Submit({IoKind::kRead, 0, 4096}).ok());       // page 0 intact
  EXPECT_EQ(device->ftl().Stats().valid_pages, 2u);                 // page 1 gone
}

TEST(FlashDeviceTest, SequentialDetection) {
  FlashDeviceConfig cfg;
  cfg.name = "penalty-device";
  cfg.perf.per_request_overhead = SimDuration::Micros(10);
  cfg.perf.bus_mib_per_sec = 1000.0;
  cfg.perf.effective_parallelism = 64;
  cfg.perf.random_write_penalty = SimDuration::Millis(5);
  FlashDevice device(cfg, MakeTinyFtl());
  // First write (offset 0) counts as sequential (cursor starts at 0).
  Result<IoCompletion> w0 = device.Submit({IoKind::kWrite, 0, 4096});
  ASSERT_TRUE(w0.ok());
  EXPECT_LT(w0.value().service_time, SimDuration::Millis(1));
  // Next sequential write: no penalty.
  Result<IoCompletion> w1 = device.Submit({IoKind::kWrite, 4096, 4096});
  ASSERT_TRUE(w1.ok());
  EXPECT_LT(w1.value().service_time, SimDuration::Millis(1));
  // Jump: penalty applies.
  Result<IoCompletion> w2 = device.Submit({IoKind::kWrite, 64 * 4096, 4096});
  ASSERT_TRUE(w2.ok());
  EXPECT_GE(w2.value().service_time, SimDuration::Millis(5));
}

TEST(FlashDeviceTest, HealthUnsupportedDevice) {
  FlashDeviceConfig cfg;
  cfg.name = "budget";
  cfg.health_supported = false;
  FlashDevice device(cfg, MakeTinyFtl());
  const HealthReport h = device.QueryHealth();
  EXPECT_FALSE(h.supported);
  EXPECT_EQ(h.life_time_est_a, 0u);
  EXPECT_EQ(h.pre_eol, PreEolInfo::kNotDefined);
}

TEST(FlashDeviceTest, HealthSupportedDevice) {
  auto device = MakeTinyDevice();
  const HealthReport h = device->QueryHealth();
  EXPECT_TRUE(h.supported);
  EXPECT_EQ(h.life_time_est_a, 1u);
}

TEST(FlashDeviceTest, LargeWriteCoalescesPages) {
  auto device = MakeTinyDevice();
  Result<IoCompletion> done = device->Submit({IoKind::kWrite, 0, 1024 * 1024});
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(device->ftl().Stats().host_pages_written, 256u);
}

TEST(FlashDeviceTest, ClockCategoriesTracked) {
  auto device = MakeTinyDevice();
  ASSERT_TRUE(device->Submit({IoKind::kWrite, 0, 4096}).ok());
  ASSERT_TRUE(device->Submit({IoKind::kRead, 0, 4096}).ok());
  EXPECT_GT(device->clock().CategoryTotal("write").nanos(), 0);
  EXPECT_GT(device->clock().CategoryTotal("read").nanos(), 0);
}

}  // namespace
}  // namespace flashsim
