#include "src/simcore/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace flashsim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(7);
  const uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Reseed(7);
  EXPECT_EQ(rng.NextU64(), first);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  // splitmix64 seeding must not produce the all-zero state.
  bool any_nonzero = false;
  for (int i = 0; i < 8; ++i) {
    any_nonzero |= rng.NextU64() != 0;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64CoversRange) {
  Rng rng(5);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) {
    ++seen[rng.UniformU64(8)];
  }
  for (int bucket = 0; bucket < 8; ++bucket) {
    // Each bucket expects 500; allow generous slack.
    EXPECT_GT(seen[bucket], 350) << "bucket " << bucket;
    EXPECT_LT(seen[bucket], 650) << "bucket " << bucket;
  }
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.UniformInRange(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= v == 10;
    saw_hi |= v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, BinomialEdgeCases) {
  Rng rng(19);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.Binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.Binomial(100, 1.0), 100u);
}

// Parameterized property: Binomial sample mean tracks n*p in both the
// small-mean (Poisson) and large-mean (Gaussian) regimes, and never exceeds n.
struct BinomialCase {
  uint64_t trials;
  double p;
};

class BinomialProperty : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialProperty, MeanTracksNp) {
  const BinomialCase c = GetParam();
  Rng rng(23);
  double sum = 0;
  const int kSamples = 3000;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t v = rng.Binomial(c.trials, c.p);
    ASSERT_LE(v, c.trials);
    sum += static_cast<double>(v);
  }
  const double expected = static_cast<double>(c.trials) * c.p;
  const double tolerance = 5.0 * std::sqrt(expected + 1.0) / std::sqrt(kSamples) + 0.05;
  EXPECT_NEAR(sum / kSamples, expected, expected * 0.1 + tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialProperty,
    ::testing::Values(BinomialCase{100, 0.01}, BinomialCase{8192, 1e-4},
                      BinomialCase{8192, 0.01}, BinomialCase{8192, 0.5},
                      BinomialCase{100000, 0.001}));

TEST(RngTest, GaussianMeanAndVariance) {
  Rng rng(29);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.1);
}

TEST(DeriveSeedTest, DeterministicForSameInputs) {
  EXPECT_EQ(DeriveSeed(42, 0), DeriveSeed(42, 0));
  EXPECT_EQ(DeriveSeed(0, 7), DeriveSeed(0, 7));
}

TEST(DeriveSeedTest, DistinctIndicesDistinctSeeds) {
  std::vector<uint64_t> seeds;
  for (uint64_t i = 0; i < 256; ++i) {
    seeds.push_back(DeriveSeed(42, i));
  }
  for (size_t a = 0; a < seeds.size(); ++a) {
    for (size_t b = a + 1; b < seeds.size(); ++b) {
      EXPECT_NE(seeds[a], seeds[b]) << "indices " << a << " and " << b;
    }
  }
}

TEST(DeriveSeedTest, ChildDiffersFromBase) {
  for (uint64_t base : {0ull, 1ull, 42ull, ~0ull}) {
    EXPECT_NE(DeriveSeed(base, 0), base);
    EXPECT_NE(DeriveSeed(base, 1), base);
  }
}

TEST(DeriveSeedTest, DerivedStreamsDecorrelated) {
  // Sibling streams from consecutive indices must not collide element-wise.
  Rng a(DeriveSeed(42, 0));
  Rng b(DeriveSeed(42, 1));
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(31);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(4.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.25);
}

}  // namespace
}  // namespace flashsim
