#include "src/nand/config.h"

#include <gtest/gtest.h>

namespace flashsim {
namespace {

TEST(NandConfigTest, DefaultsValidate) {
  EXPECT_TRUE(NandChipConfig{}.Validate().ok());
  EXPECT_TRUE(MakeSlcConfig().Validate().ok());
  EXPECT_TRUE(MakeMlcConfig().Validate().ok());
  EXPECT_TRUE(MakeTlcConfig().Validate().ok());
}

TEST(NandConfigTest, GeometryMath) {
  NandChipConfig c;
  c.channels = 2;
  c.dies_per_channel = 3;
  c.blocks_per_die = 10;
  c.pages_per_block = 4;
  c.page_size_bytes = 4096;
  EXPECT_EQ(c.dies(), 6u);
  EXPECT_EQ(c.total_blocks(), 60u);
  EXPECT_EQ(c.block_size_bytes(), 4u * 4096);
  EXPECT_EQ(c.total_bytes(), 60ull * 4 * 4096);
  EXPECT_EQ(c.total_pages(), 240u);
}

TEST(NandConfigTest, CellTypeNames) {
  EXPECT_STREQ(CellTypeName(CellType::kSlc), "SLC");
  EXPECT_STREQ(CellTypeName(CellType::kMlc), "MLC");
  EXPECT_STREQ(CellTypeName(CellType::kTlc), "TLC");
}

TEST(NandConfigTest, EnduranceOrderingAcrossCellTypes) {
  // §2.1: density costs endurance — SLC >> MLC >> TLC.
  EXPECT_GT(MakeSlcConfig().rated_pe_cycles, MakeMlcConfig().rated_pe_cycles);
  EXPECT_GT(MakeMlcConfig().rated_pe_cycles, MakeTlcConfig().rated_pe_cycles);
}

TEST(NandConfigTest, TimingOrderingAcrossCellTypes) {
  // Denser cells program and read slower.
  EXPECT_LT(DefaultTimingsFor(CellType::kSlc).program_page,
            DefaultTimingsFor(CellType::kMlc).program_page);
  EXPECT_LT(DefaultTimingsFor(CellType::kMlc).program_page,
            DefaultTimingsFor(CellType::kTlc).program_page);
  EXPECT_LT(DefaultTimingsFor(CellType::kSlc).read_page,
            DefaultTimingsFor(CellType::kTlc).read_page);
}

// Parameterized invalid-config sweep.
struct InvalidCase {
  const char* label;
  void (*mutate)(NandChipConfig&);
};

class NandConfigInvalid : public ::testing::TestWithParam<InvalidCase> {};

TEST_P(NandConfigInvalid, RejectsBadField) {
  NandChipConfig c;
  GetParam().mutate(c);
  EXPECT_FALSE(c.Validate().ok()) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    BadFields, NandConfigInvalid,
    ::testing::Values(
        InvalidCase{"zero channels", [](NandChipConfig& c) { c.channels = 0; }},
        InvalidCase{"zero dies", [](NandChipConfig& c) { c.dies_per_channel = 0; }},
        InvalidCase{"zero blocks", [](NandChipConfig& c) { c.blocks_per_die = 0; }},
        InvalidCase{"zero pages", [](NandChipConfig& c) { c.pages_per_block = 0; }},
        InvalidCase{"zero page size", [](NandChipConfig& c) { c.page_size_bytes = 0; }},
        InvalidCase{"non-pow2 page size",
                    [](NandChipConfig& c) { c.page_size_bytes = 5000; }},
        InvalidCase{"zero endurance", [](NandChipConfig& c) { c.rated_pe_cycles = 0; }},
        InvalidCase{"huge ECC codeword",
                    [](NandChipConfig& c) { c.ecc.codeword_bytes = c.page_size_bytes * 2; }},
        InvalidCase{"zero ECC codeword",
                    [](NandChipConfig& c) { c.ecc.codeword_bytes = 0; }},
        InvalidCase{"negative rber base",
                    [](NandChipConfig& c) { c.rber.base_rber = -1.0; }},
        InvalidCase{"zero rber exponent",
                    [](NandChipConfig& c) { c.rber.exponent = 0.0; }},
        InvalidCase{"failure ceiling > 1",
                    [](NandChipConfig& c) { c.failure_ceiling = 1.5; }}),
    [](const ::testing::TestParamInfo<InvalidCase>& param_info) {
      std::string name = param_info.param.label;
      for (char& ch : name) {
        if (!isalnum(static_cast<unsigned char>(ch))) {
          ch = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace flashsim
