// CowFs-specific semantics: the metadata-pair commit protocol, the on-media
// commit-block codec (including the decoder fuzz sweep), suffix
// copy-on-write accounting, wear rotation, and the zero-repair mount.
// Generic Filesystem-contract coverage lives in fs_common_test /
// fs_truncate_rename_test via the shared parameterized suite.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/fs/cowfs.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

struct CowFixture {
  std::unique_ptr<FlashDevice> device;
  std::unique_ptr<CowFs> fs;
};

CowFixture MakeCow() {
  CowFixture f;
  f.device = MakeDurableDevice();
  f.fs = std::make_unique<CowFs>(*f.device);
  return f;
}

TEST(CowFsCodecTest, RoundtripsEntriesWithHoles) {
  std::vector<CowFsDecodedPair::Entry> entries(2);
  entries[0].name = "alpha";
  entries[0].id = 7;
  entries[0].size = 123456;
  entries[0].blocks = {40, 0, 41, 99};  // hole at file block 1
  entries[1].name = "b";
  entries[1].id = 8;
  entries[1].size = 0;
  const std::vector<uint8_t> image = CowFs::EncodePairBlock(3, 42, entries);

  const Result<CowFsDecodedPair> decoded = CowFs::DecodePairBlock(image, 3);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().revision, 42u);
  ASSERT_EQ(decoded.value().entries.size(), 2u);
  EXPECT_EQ(decoded.value().entries[0].name, "alpha");
  EXPECT_EQ(decoded.value().entries[0].id, 7u);
  EXPECT_EQ(decoded.value().entries[0].size, 123456u);
  EXPECT_EQ(decoded.value().entries[0].blocks, (std::vector<uint64_t>{40, 0, 41, 99}));
  EXPECT_EQ(decoded.value().entries[1].blocks.size(), 0u);

  // The pair id is part of the sealed payload: a block from another pair is
  // data loss, not a silent cross-wire.
  EXPECT_EQ(CowFs::DecodePairBlock(image, 2).status().code(), StatusCode::kDataLoss);
}

TEST(CowFsCodecTest, EmptyImageIsValidRevisionZero) {
  const Result<CowFsDecodedPair> decoded = CowFs::DecodePairBlock({}, 0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().revision, 0u);
  EXPECT_TRUE(decoded.value().entries.empty());
}

TEST(CowFsCodecTest, RejectsHugeClaimedCountsWithoutAllocating) {
  // A corrupt varint entry count claiming ~2^62 entries must be rejected
  // by the remaining-bytes bound before any reserve is attempted.
  std::vector<CowFsDecodedPair::Entry> none;
  std::vector<uint8_t> image = CowFs::EncodePairBlock(0, 1, none);
  // Rewrite the entry-count varint (offset 6: magic + pair + revision) to a
  // 9-byte maximal varint and reseal nothing — the checksum now fails, which
  // is also fine; the property is "clean error", checked on both paths.
  image[6] = 0xff;
  EXPECT_EQ(CowFs::DecodePairBlock(image, 0).status().code(), StatusCode::kDataLoss);
}

// Commit protocol: each barrier writes exactly one commit block into the
// pair's alternating non-current slot and bumps the revision.
TEST(CowFsCommitTest, AlternatingSlotsCarryIncreasingRevisions) {
  CowFixture f = MakeCow();
  ASSERT_TRUE(f.fs->Create("f").ok());  // commit 1
  ASSERT_TRUE(f.fs->Write("f", 0, 4096, /*sync=*/true).ok());   // commit 2
  ASSERT_TRUE(f.fs->Write("f", 4096, 4096, /*sync=*/true).ok());  // commit 3
  EXPECT_EQ(f.fs->stats().metadata_commits, 3u);

  const Result<CowFsDecodedPair> slot0 =
      CowFs::DecodePairBlock(f.fs->PairImageForTest(0, 0), 0);
  const Result<CowFsDecodedPair> slot1 =
      CowFs::DecodePairBlock(f.fs->PairImageForTest(0, 1), 0);
  ASSERT_TRUE(slot0.ok());
  ASSERT_TRUE(slot1.ok());
  // Commits 2 and 3 landed in slots 0 and 1 respectively (slot = rev & 1).
  EXPECT_EQ(slot0.value().revision, 2u);
  EXPECT_EQ(slot1.value().revision, 3u);
  EXPECT_EQ(slot1.value().entries.size(), 1u);
  EXPECT_EQ(slot1.value().entries[0].size, 8192u);
}

// The structural WA signature: overwriting the head of a file relocates the
// whole CTZ suffix; appending relocates nothing.
TEST(CowFsCowTest, HeadOverwriteMovesSuffixAppendMovesNothing) {
  CowFixture f = MakeCow();
  ASSERT_TRUE(f.fs->Create("f").ok());
  ASSERT_TRUE(f.fs->Write("f", 0, 64 * 4096, /*sync=*/false).ok());
  EXPECT_EQ(f.fs->stats().cleaner_bytes_moved, 0u);

  // Append: O(1), no relocation.
  ASSERT_TRUE(f.fs->Write("f", 64 * 4096, 4096, /*sync=*/false).ok());
  EXPECT_EQ(f.fs->stats().cleaner_bytes_moved, 0u);

  // Overwrite block 0: the remaining 64 blocks are copied to fresh blocks.
  ASSERT_TRUE(f.fs->Write("f", 0, 4096, /*sync=*/false).ok());
  EXPECT_EQ(f.fs->stats().cleaner_bytes_moved, 64u * 4096);

  // Overwrite the tail block: nothing after it, nothing moves.
  ASSERT_TRUE(f.fs->Write("f", 64 * 4096, 4096, /*sync=*/false).ok());
  EXPECT_EQ(f.fs->stats().cleaner_bytes_moved, 64u * 4096);
}

// Wear rotation: the allocator's cursor never resets, so rewriting the same
// file block lands on fresh device blocks each time instead of ping-ponging
// over a hot set.
TEST(CowFsCowTest, AllocationRotatesAcrossTheDataRegion) {
  CowFixture f = MakeCow();
  ASSERT_TRUE(f.fs->Create("f").ok());
  uint64_t before = f.device->ftl().Stats().nand_pages_written;
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(f.fs->Write("f", 0, 4096, /*sync=*/true).ok());
  }
  // 32 single-block rewrites on a ~16k-block data region: rotation spreads
  // them over distinct physical pages (no in-place overwrite shortcut).
  const uint64_t after = f.device->ftl().Stats().nand_pages_written;
  EXPECT_GE(after - before, 32u);
}

TEST(CowFsMountTest, MountIsZeroRepairByConstruction) {
  CowFixture f = MakeCow();
  ASSERT_TRUE(f.fs->Create("a").ok());
  ASSERT_TRUE(f.fs->Write("a", 0, 32 * 4096, /*sync=*/true).ok());
  ASSERT_TRUE(f.fs->Create("b").ok());
  ASSERT_TRUE(f.fs->Write("b", 0, 4096, /*sync=*/false).ok());  // volatile

  ASSERT_TRUE(f.device->Remount().ok());
  const Result<RecoveryReport> rep = f.fs->Mount();
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep.value().fsck_repairs, 0u);
  EXPECT_EQ(rep.value().orphan_files, 0u);
  EXPECT_EQ(rep.value().orphan_blocks, 0u);
  EXPECT_EQ(rep.value().files_recovered, 2u);
  // "a" recovers in full; "b" exists (Create committed) at its committed
  // size 0 — the unsynced write was never promised.
  EXPECT_EQ(f.fs->FileSize("a").value(), 32u * 4096);
  EXPECT_EQ(f.fs->FileSize("b").value(), 0u);
}

// A torn commit block must lose the revision race: zapping the current slot
// recovers the previous committed state, bit-exact.
TEST(CowFsMountTest, TornCurrentSlotRecoversOlderRevision) {
  CowFixture f = MakeCow();
  ASSERT_TRUE(f.fs->Create("f").ok());                            // rev 1
  ASSERT_TRUE(f.fs->Write("f", 0, 8 * 4096, /*sync=*/true).ok());  // rev 2
  ASSERT_TRUE(f.fs->Write("f", 8 * 4096, 8 * 4096, /*sync=*/true).ok());  // rev 3

  // rev 3 sits in slot 1; tear it (arbitrary garbage, as an interrupted
  // program would leave).
  std::vector<uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x11};
  f.fs->CorruptPairImageForTest(0, 1, garbage);
  ASSERT_TRUE(f.device->Remount().ok());
  const Result<RecoveryReport> rep = f.fs->Mount();
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep.value().fsck_repairs, 0u);
  EXPECT_EQ(f.fs->FileSize("f").value(), 8u * 4096);  // rev 2 state

  // Both slots gone means external corruption, which IS data loss.
  f.fs->CorruptPairImageForTest(0, 0, garbage);
  f.fs->CorruptPairImageForTest(0, 1, garbage);
  ASSERT_TRUE(f.device->Remount().ok());
  EXPECT_EQ(f.fs->Mount().status().code(), StatusCode::kDataLoss);
}

// Satellite: decoder fuzz, same mutation harness as the fleet park-blob
// fuzz. Every mutation of a real commit block either fails with a clean
// DataLossError or still decodes — never UB, a crash, or an unbounded
// allocation. Runs under ASan/UBSan in CI via the sanitize suite.
TEST(CowFsFuzzTest, MutatedCommitBlocksDecodeCleanlyOrFail) {
  CowFixture f = MakeCow();
  ASSERT_TRUE(f.fs->Create("alpha-longer-name").ok());                      // rev 1
  ASSERT_TRUE(f.fs->Write("alpha-longer-name", 0, 24 * 4096, true).ok());   // rev 2
  ASSERT_TRUE(f.fs->Write("alpha-longer-name", 24 * 4096, 4096, true).ok());  // rev 3
  const uint32_t pair = 0;
  // Revision 3 sits in slot 1 and carries the full 25-block extent list.
  const std::vector<uint8_t> valid = f.fs->PairImageForTest(pair, 1);
  const Result<CowFsDecodedPair> sanity = CowFs::DecodePairBlock(valid, pair);
  ASSERT_TRUE(sanity.ok());
  ASSERT_EQ(sanity.value().revision, 3u);
  ASSERT_EQ(sanity.value().entries.at(0).blocks.size(), 25u);

  std::mt19937_64 rng(0xc0f5);
  const auto check_decode = [&](const std::vector<uint8_t>& image) {
    const Result<CowFsDecodedPair> r = CowFs::DecodePairBlock(image, pair);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << r.status().ToString();
    }
  };

  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> image = valid;
    switch (trial % 4) {
      case 0: {  // single byte flip
        image[rng() % image.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
        break;
      }
      case 1: {  // truncate
        image.resize(rng() % (image.size() + 1));
        break;
      }
      case 2: {  // append garbage
        const size_t extra = 1 + rng() % 16;
        for (size_t i = 0; i < extra; ++i) {
          image.push_back(static_cast<uint8_t>(rng()));
        }
        break;
      }
      default: {  // burst of flips
        for (int k = 0; k < 8; ++k) {
          image[rng() % image.size()] ^= static_cast<uint8_t>(rng());
        }
        break;
      }
    }
    check_decode(image);
  }

  // Pure-garbage inputs of every small size.
  for (size_t size = 0; size < 64; ++size) {
    std::vector<uint8_t> garbage(size);
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng());
    }
    check_decode(garbage);
  }
}

// Mount-level fuzz: a mutated commit block reaching the real recovery path
// yields either a clean DataLossError or a valid *older* revision — never a
// crash and never silent acceptance of a state that was never committed.
TEST(CowFsFuzzTest, MutatedMountRecoversOlderRevisionOrFailsCleanly) {
  CowFixture f = MakeCow();
  ASSERT_TRUE(f.fs->Create("f").ok());                             // rev 1
  ASSERT_TRUE(f.fs->Write("f", 0, 8 * 4096, /*sync=*/true).ok());   // rev 2
  const uint64_t older_size = f.fs->FileSize("f").value();
  ASSERT_TRUE(f.fs->Write("f", 8 * 4096, 4 * 4096, /*sync=*/true).ok());  // rev 3
  const uint64_t newer_size = f.fs->FileSize("f").value();
  const std::vector<uint8_t> current = f.fs->PairImageForTest(0, 1);  // rev 3

  std::mt19937_64 rng(0x5eed);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<uint8_t> image = current;
    switch (trial % 4) {
      case 0:
        image[rng() % image.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
        break;
      case 1:
        image.resize(rng() % (image.size() + 1));
        break;
      case 2:
        image.push_back(static_cast<uint8_t>(rng()));
        break;
      default:
        for (int k = 0; k < 8; ++k) {
          image[rng() % image.size()] ^= static_cast<uint8_t>(rng());
        }
        break;
    }
    f.fs->CorruptPairImageForTest(0, 1, image);
    ASSERT_TRUE(f.device->Remount().ok());
    const Result<RecoveryReport> rep = f.fs->Mount();
    if (rep.ok()) {
      // The mutation either left the block intact (checksum still valid) or
      // the older slot won: the recovered size must be a committed one.
      const uint64_t size = f.fs->FileSize("f").value();
      EXPECT_TRUE(size == older_size || size == newer_size)
          << "trial " << trial << " recovered uncommitted size " << size;
      EXPECT_EQ(rep.value().fsck_repairs, 0u);
    } else {
      EXPECT_EQ(rep.status().code(), StatusCode::kDataLoss)
          << rep.status().ToString();
    }
    // Restore the true image for the next trial.
    f.fs->CorruptPairImageForTest(0, 1, current);
    ASSERT_TRUE(f.device->Remount().ok());
    ASSERT_TRUE(f.fs->Mount().ok());
  }
}

}  // namespace
}  // namespace flashsim
