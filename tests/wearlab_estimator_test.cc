#include "src/wearlab/lifetime_estimator.h"

#include <gtest/gtest.h>

#include "src/simcore/units.h"

namespace flashsim {
namespace {

TEST(LifetimeEstimatorTest, PaperSection23Numbers) {
  // §2.3: a consumer SSD rated 3K P/E can be completely rewritten three
  // times a day for three years.
  LifetimeEstimator est(256 * kGiB, 3000);
  const double daily = 3.0 * 256 * kGiB;  // three full rewrites a day
  const LifetimeEstimate e = est.Estimate(daily);
  EXPECT_NEAR(e.years_at_workload, 1000.0 / 365.0, 0.01);
  EXPECT_DOUBLE_EQ(e.full_rewrites, 3000.0);
}

TEST(LifetimeEstimatorTest, BudgetIsCapacityTimesEndurance) {
  LifetimeEstimator est(8 * kGiB, 3000);
  EXPECT_DOUBLE_EQ(est.Estimate(1).total_write_bytes, 8.0 * kGiB * 3000);
}

TEST(LifetimeEstimatorTest, ZeroWorkloadGivesZeroDays) {
  LifetimeEstimator est(8 * kGiB, 3000);
  const LifetimeEstimate e = est.Estimate(0);
  EXPECT_DOUBLE_EQ(e.days_at_workload, 0.0);
}

TEST(LifetimeEstimatorTest, HoursToExhaust) {
  LifetimeEstimator est(8 * kGiB, 3000);
  // 24 TiB at 20 MiB/s: 24*1024*1024 MiB / 20 MiB/s / 3600.
  const double expected = 8.0 * 1024 * 3000 / 20.0 / 3600.0;
  EXPECT_NEAR(est.HoursToExhaust(20.0), expected, 0.1);
  EXPECT_DOUBLE_EQ(est.HoursToExhaust(0.0), 0.0);
}

TEST(LifetimeEstimatorTest, OptimismFactor) {
  LifetimeEstimator est(8 * kGiB, 3000);
  const double measured = 8.0 * kGiB * 1000;  // device died 3x early
  EXPECT_NEAR(est.OptimismFactor(measured), 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(est.OptimismFactor(0.0), 0.0);
}

TEST(LifetimeEstimatorTest, AccessorsRoundtrip) {
  LifetimeEstimator est(123456, 789);
  EXPECT_EQ(est.capacity_bytes(), 123456u);
  EXPECT_EQ(est.rated_pe_cycles(), 789u);
}

}  // namespace
}  // namespace flashsim
