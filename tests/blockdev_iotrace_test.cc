#include "src/blockdev/iotrace.h"

#include <gtest/gtest.h>

#include "src/simcore/units.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

TEST(TraceRecorderTest, RecordsEntriesAndStats) {
  TraceRecorder trace;
  trace.Record({IoKind::kWrite, 0, 4096}, SimTime(0), SimDuration::Micros(200));
  trace.Record({IoKind::kRead, 4096, 8192}, SimTime(1000), SimDuration::Micros(100));
  EXPECT_EQ(trace.total_recorded(), 2u);
  EXPECT_EQ(trace.entries().size(), 2u);
  EXPECT_EQ(trace.bytes_written(), 4096u);
  EXPECT_EQ(trace.bytes_read(), 8192u);
  EXPECT_EQ(trace.WriteLatencyUs().TotalCount(), 1u);
  EXPECT_EQ(trace.ReadLatencyUs().TotalCount(), 1u);
  EXPECT_EQ(trace.SizeBytes().TotalCount(), 2u);
}

TEST(TraceRecorderTest, BoundedBufferKeepsCounting) {
  TraceRecorder trace(/*max_entries=*/4);
  for (int i = 0; i < 10; ++i) {
    trace.Record({IoKind::kWrite, 0, 4096}, SimTime(i), SimDuration::Micros(10));
  }
  EXPECT_EQ(trace.entries().size(), 4u);
  EXPECT_EQ(trace.total_recorded(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
  EXPECT_EQ(trace.bytes_written(), 10u * 4096);
}

TEST(TraceRecorderTest, SummaryMentionsVolume) {
  TraceRecorder trace;
  trace.Record({IoKind::kWrite, 0, kMiB}, SimTime(), SimDuration::Micros(500));
  const std::string summary = trace.Summary();
  EXPECT_NE(summary.find("1 reqs"), std::string::npos);
  EXPECT_NE(summary.find("1.00 MiB written"), std::string::npos);
}

TEST(TraceRecorderTest, ClearResets) {
  TraceRecorder trace;
  trace.Record({IoKind::kWrite, 0, 4096}, SimTime(), SimDuration::Micros(10));
  trace.Clear();
  EXPECT_EQ(trace.total_recorded(), 0u);
  EXPECT_EQ(trace.bytes_written(), 0u);
  EXPECT_EQ(trace.WriteLatencyUs().TotalCount(), 0u);
}

TEST(TraceIntegrationTest, DeviceRecordsItsRequests) {
  auto device = MakeDurableDevice();
  TraceRecorder trace;
  device->SetTraceRecorder(&trace);
  ASSERT_TRUE(device->Submit({IoKind::kWrite, 0, 64 * 1024}).ok());
  ASSERT_TRUE(device->Submit({IoKind::kRead, 0, 4096}).ok());
  device->SetTraceRecorder(nullptr);
  ASSERT_TRUE(device->Submit({IoKind::kWrite, 0, 4096}).ok());  // not recorded
  EXPECT_EQ(trace.total_recorded(), 2u);
  EXPECT_EQ(trace.bytes_written(), 64u * 1024);
  EXPECT_EQ(trace.entries()[0].kind, IoKind::kWrite);
  EXPECT_GT(trace.entries()[0].service_time.nanos(), 0);
}

TEST(TraceReplayTest, ReplayReissuesSameBytes) {
  auto source = MakeDurableDevice(1);
  TraceRecorder trace;
  source->SetTraceRecorder(&trace);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(source->Submit({IoKind::kWrite, static_cast<uint64_t>(i) * 8192,
                                8192}).ok());
  }
  auto target = MakeDurableDevice(2);
  const ReplayResult replay = ReplayTrace(trace.entries(), *target);
  EXPECT_EQ(replay.requests_replayed, 32u);
  EXPECT_EQ(replay.requests_failed, 0u);
  EXPECT_EQ(target->HostBytesWritten(), 32u * 8192);
  EXPECT_GT(replay.total_io_time.nanos(), 0);
  EXPECT_GT(replay.trace_io_time.nanos(), 0);
}

TEST(TraceReplayTest, PreservesIdleGaps) {
  auto source = MakeDurableDevice(1);
  TraceRecorder trace;
  source->SetTraceRecorder(&trace);
  ASSERT_TRUE(source->Submit({IoKind::kWrite, 0, 4096}).ok());
  source->clock().Advance(SimDuration::Seconds(10));  // think time
  ASSERT_TRUE(source->Submit({IoKind::kWrite, 4096, 4096}).ok());

  auto target = MakeDurableDevice(2);
  (void)ReplayTrace(trace.entries(), *target);
  // Target clock must include the ~10s gap.
  EXPECT_GT(target->clock().Now().ToSecondsF(), 9.9);
}

TEST(TraceReplayTest, IdenticalDeviceReplaysAtUnitSlowdown) {
  auto source = MakeDurableDevice(1);
  TraceRecorder trace;
  source->SetTraceRecorder(&trace);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(source->Submit({IoKind::kWrite, static_cast<uint64_t>(i) * 4096,
                                4096}).ok());
  }
  auto twin = MakeDurableDevice(1);
  const ReplayResult replay = ReplayTrace(trace.entries(), *twin);
  EXPECT_NEAR(replay.SlowdownFactor(), 1.0, 0.05);
}

TEST(TraceReplayTest, OffsetsWrapOnSmallerTarget) {
  auto source = MakeDurableDevice(1);
  TraceRecorder trace;
  source->SetTraceRecorder(&trace);
  const uint64_t high = source->CapacityBytes() - 4096;
  ASSERT_TRUE(source->Submit({IoKind::kWrite, high, 4096}).ok());

  auto tiny = MakeTinyDevice(2);  // smaller than source
  ASSERT_LT(tiny->CapacityBytes(), source->CapacityBytes());
  const ReplayResult replay = ReplayTrace(trace.entries(), *tiny);
  EXPECT_EQ(replay.requests_replayed, 1u);
  EXPECT_EQ(replay.requests_failed, 0u);
}

TEST(TraceReplayTest, StopsWhenTargetBricks) {
  auto source = MakeDurableDevice(1);
  TraceRecorder trace;
  source->SetTraceRecorder(&trace);
  // A heavy write stream: ~12 GiB against the frail target's ~3 GiB budget.
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(
        source->Submit({IoKind::kWrite, (i % 128) * 256ull * 1024, 256 * 1024}).ok());
  }
  auto frail = MakeTinyDevice(3);  // 200-cycle NAND: will die mid-replay
  const ReplayResult replay = ReplayTrace(trace.entries(), *frail);
  EXPECT_EQ(replay.status.code(), StatusCode::kUnavailable);
  EXPECT_LT(replay.requests_replayed, 50000u);
  EXPECT_TRUE(frail->IsReadOnly());
}

}  // namespace
}  // namespace flashsim
