#include "src/fs/logfs.h"

#include <gtest/gtest.h>

#include "src/simcore/rng.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

class LogFsTest : public ::testing::Test {
 protected:
  LogFsTest() : device_(MakeDurableDevice()), fs_(*device_) {}
  std::unique_ptr<FlashDevice> device_;
  LogFs fs_;
};

TEST_F(LogFsTest, TypeName) { EXPECT_STREQ(fs_.fs_type(), "logfs"); }

TEST_F(LogFsTest, SyncWriteDoublesDeviceIo) {
  // The Figure 4 mechanism: every 4 KiB sync write also writes a node block.
  ASSERT_TRUE(fs_.Create("f").ok());
  for (int i = 0; i < 1024; ++i) {
    ASSERT_TRUE(fs_.Write("f", static_cast<uint64_t>(i % 64) * 4096, 4096, true).ok());
  }
  const double wa = fs_.stats().FsWriteAmplification();
  EXPECT_GT(wa, 1.9);
  EXPECT_LT(wa, 2.2);
}

TEST_F(LogFsTest, BufferedWritesDeferNodeUpdates) {
  ASSERT_TRUE(fs_.Create("f").ok());
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(fs_.Write("f", static_cast<uint64_t>(i) * 4096, 4096, false).ok());
  }
  // No sync: metadata (node) traffic should be zero so far.
  EXPECT_EQ(fs_.stats().device_metadata_bytes, 0u);
  ASSERT_TRUE(fs_.Fsync("f").ok());
  EXPECT_EQ(fs_.stats().device_metadata_bytes, 4096u) << "one node block per fsync";
}

TEST_F(LogFsTest, FsyncWithoutDirtyDataIsFree) {
  ASSERT_TRUE(fs_.Create("f").ok());
  ASSERT_TRUE(fs_.Write("f", 0, 4096, true).ok());
  const uint64_t metadata = fs_.stats().device_metadata_bytes;
  ASSERT_TRUE(fs_.Fsync("f").ok());  // nothing dirty
  EXPECT_EQ(fs_.stats().device_metadata_bytes, metadata);
}

TEST_F(LogFsTest, LargeSyncWritePaysOneNodeBlock) {
  ASSERT_TRUE(fs_.Create("f").ok());
  ASSERT_TRUE(fs_.Write("f", 0, 1024 * 1024, true).ok());
  // 256 data blocks + 1 node block.
  EXPECT_EQ(fs_.stats().device_data_bytes, 1024u * 1024);
  EXPECT_EQ(fs_.stats().device_metadata_bytes, 4096u);
}

TEST_F(LogFsTest, OverwriteAppendsToLog) {
  ASSERT_TRUE(fs_.Create("f").ok());
  ASSERT_TRUE(fs_.Write("f", 0, 4096, true).ok());
  const uint64_t free_before = fs_.FreeBytes();
  // Rewriting the same block consumes new log space (old copy invalidated).
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(fs_.Write("f", 0, 4096, true).ok());
  }
  EXPECT_LT(fs_.FreeBytes(), free_before);
}

TEST_F(LogFsTest, CheckpointFlushesNat) {
  LogFsConfig cfg;
  cfg.checkpoint_interval_nodes = 16;
  auto device = MakeDurableDevice();
  LogFs fs(*device, cfg);
  ASSERT_TRUE(fs.Create("f").ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(fs.Write("f", 0, 4096, true).ok());
  }
  EXPECT_GT(fs.stats().device_journal_bytes, 0u)
      << "checkpoint + NAT traffic expected";
}

TEST_F(LogFsTest, CleanerReclaimsSegments) {
  LogFsConfig cfg;
  cfg.blocks_per_segment = 64;  // small segments so cleaning happens sooner
  cfg.cleaner_free_watermark = 4;
  auto device = MakeDurableDevice();
  LogFs fs(*device, cfg);
  ASSERT_TRUE(fs.Create("f").ok());
  // Keep a modest live set but churn it hard: the log fills with dead blocks
  // and the cleaner must reclaim segments for writing to continue.
  Rng rng(3);
  for (int i = 0; i < 40000; ++i) {
    const uint64_t off = rng.UniformU64(512) * 4096;
    ASSERT_TRUE(fs.Write("f", off, 4096, i % 4 == 0).ok()) << "write " << i;
  }
  EXPECT_GT(fs.segments_cleaned(), 0u);
  EXPECT_TRUE(fs.Read("f", 0, 512 * 4096).ok());
}

TEST_F(LogFsTest, CleanerPreservesLiveData) {
  LogFsConfig cfg;
  cfg.blocks_per_segment = 64;
  cfg.cleaner_free_watermark = 4;
  auto device = MakeDurableDevice();
  LogFs fs(*device, cfg);
  // A cold file that the cleaner will have to migrate.
  ASSERT_TRUE(fs.Create("cold").ok());
  ASSERT_TRUE(fs.Write("cold", 0, 256 * 4096, true).ok());
  ASSERT_TRUE(fs.Create("hot").ok());
  Rng rng(4);
  for (int i = 0; i < 30000; ++i) {
    ASSERT_TRUE(fs.Write("hot", rng.UniformU64(128) * 4096, 4096, false).ok());
  }
  // Cold file still fully readable after heavy cleaning.
  EXPECT_TRUE(fs.Read("cold", 0, 256 * 4096).ok());
  EXPECT_EQ(fs.FileSize("cold").value(), 256u * 4096);
}

TEST_F(LogFsTest, UnlinkInvalidatesBlocksForCleaner) {
  ASSERT_TRUE(fs_.Create("f").ok());
  ASSERT_TRUE(fs_.Write("f", 0, 1024 * 1024, true).ok());
  ASSERT_TRUE(fs_.Unlink("f").ok());
  EXPECT_FALSE(fs_.Exists("f"));
  // Space returns once the (lazy) cleaner runs; at minimum the FS must keep
  // accepting writes into reclaimed space.
  ASSERT_TRUE(fs_.Create("g").ok());
  EXPECT_TRUE(fs_.Write("g", 0, 1024 * 1024, true).ok());
}

TEST_F(LogFsTest, DeviceSeesSequentialLogWrites) {
  // Random app writes become sequential device appends — the log-structured
  // property that helps the FTL (Figure 4 discussion).
  ASSERT_TRUE(fs_.Create("f").ok());
  Rng rng(9);
  for (int i = 0; i < 512; ++i) {
    ASSERT_TRUE(fs_.Write("f", rng.UniformU64(256) * 4096, 4096, false).ok());
  }
  // With purely sequential appends the device FTL does no GC: WA exactly 1.
  EXPECT_DOUBLE_EQ(device_->ftl().Stats().WriteAmplification(), 1.0);
}

TEST_F(LogFsTest, CleanNowDistinguishesEmptyFromFullyValid) {
  for (const VictimSelect select :
       {VictimSelect::kLinearScan, VictimSelect::kIndexed}) {
    LogFsConfig cfg;
    cfg.blocks_per_segment = 64;
    cfg.cleaner_free_watermark = 4;
    cfg.victim_select = select;
    auto device = MakeDurableDevice();
    LogFs fs(*device, cfg);
    // Fresh fs: no in-use segment beyond the log heads, nothing to clean.
    EXPECT_EQ(fs.CleanNow().code(), StatusCode::kResourceExhausted);
    // Sequential never-overwritten data: every segment the log retires is
    // 100% valid. Cleaning one would copy a whole segment for zero gain, so
    // the pick must refuse with a distinct, retryable-after-invalidation
    // status rather than "no candidate".
    ASSERT_TRUE(fs.Create("f").ok());
    const uint64_t bytes = 3 * 64 * 4096 + 32 * 4096;  // 3.5 segments of data
    for (uint64_t off = 0; off < bytes; off += 4096) {
      ASSERT_TRUE(fs.Write("f", off, 4096, /*sync=*/false).ok());
    }
    EXPECT_EQ(fs.CleanNow().code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(fs.segments_cleaned(), 0u);
    // One overwrite punches a hole in a retired segment; cleaning succeeds.
    ASSERT_TRUE(fs.Write("f", 0, 4096, /*sync=*/false).ok());
    SimDuration clean_time;
    EXPECT_TRUE(fs.CleanNow(&clean_time).ok());
    EXPECT_EQ(fs.segments_cleaned(), 1u);
    EXPECT_GT(clean_time.nanos(), 0);
  }
}

}  // namespace
}  // namespace flashsim
