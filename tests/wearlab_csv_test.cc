#include "src/wearlab/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace flashsim {
namespace {

TEST(CsvTest, EscapePlainValuesUntouched) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
  EXPECT_EQ(CsvEscape("4.00 KiB rand"), "4.00 KiB rand");
}

TEST(CsvTest, EscapeQuotesAndCommas) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, RowJoinsWithCommas) {
  std::ostringstream os;
  WriteCsvRow(os, {"a", "b,c", "d"});
  EXPECT_EQ(os.str(), "a,\"b,c\",d\n");
}

TEST(CsvTest, TransitionsRoundtrip) {
  WearTransition t;
  t.type = WearType::kTypeB;
  t.from_level = 3;
  t.to_level = 4;
  t.host_bytes = 1024;
  t.hours = 2.5;
  t.write_amplification = 1.5;
  t.pattern_label = "4.00 KiB rand";
  t.utilization = 0.9;
  std::ostringstream os;
  WriteTransitionsCsv(os, "eMMC 8GB", {t}, /*volume_factor=*/2.0);
  const std::string out = os.str();
  EXPECT_NE(out.find("device,type,from_level"), std::string::npos);
  EXPECT_NE(out.find("eMMC 8GB,Type B,3,4,2048.0000,5.0000,1.5000"),
            std::string::npos);
}

TEST(CsvTest, PhoneRows) {
  PhoneWearRow row;
  row.from_level = 1;
  row.to_level = 2;
  row.app_bytes = 100;
  row.hours = 1.0;
  std::ostringstream os;
  WritePhoneRowsCsv(os, "Moto E 8GB", "F2FS", {row}, 1.0);
  EXPECT_NE(os.str().find("Moto E 8GB,F2FS,1,2,100.0000,1.0000"), std::string::npos);
}

TEST(CsvTest, BandwidthSeries) {
  std::ostringstream os;
  WriteBandwidthCsv(os, "uSD 16GB", "random", {{4096, 1.25}, {8192, 2.5}});
  const std::string out = os.str();
  EXPECT_NE(out.find("uSD 16GB,random,4096,1.2500"), std::string::npos);
  EXPECT_NE(out.find("uSD 16GB,random,8192,2.5000"), std::string::npos);
}

TEST(CsvTest, EmptyTransitionListStillWritesHeader) {
  std::ostringstream os;
  WriteTransitionsCsv(os, "x", {}, 1.0);
  EXPECT_EQ(os.str(), "device,type,from_level,to_level,host_bytes,hours,"
                      "write_amplification,pattern,utilization,rewrite_utilized\n");
}

}  // namespace
}  // namespace flashsim
