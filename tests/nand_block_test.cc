#include "src/nand/block.h"

#include <gtest/gtest.h>

namespace flashsim {
namespace {

// Standalone block for unit tests: Init()s `planes` for one block and views
// it at base 0.
NandBlock MakeTestBlock(PageMetaPlanes& planes, uint32_t pages_per_block) {
  planes.Init(pages_per_block);
  return NandBlock(planes, 0, pages_per_block);
}

TEST(NandBlockTest, StartsErased) {
  PageMetaPlanes planes;
  NandBlock blk = MakeTestBlock(planes, 8);
  EXPECT_TRUE(blk.IsErased());
  EXPECT_FALSE(blk.IsFull());
  EXPECT_EQ(blk.pe_cycles(), 0u);
  EXPECT_EQ(blk.write_pointer(), 0u);
  EXPECT_FALSE(blk.is_bad());
}

TEST(NandBlockTest, InOrderProgramming) {
  PageMetaPlanes planes;
  NandBlock blk = MakeTestBlock(planes, 4);
  EXPECT_TRUE(blk.ProgramPage(0, 100).ok());
  EXPECT_TRUE(blk.ProgramPage(1, 101).ok());
  // Skipping ahead violates the in-order rule.
  EXPECT_EQ(blk.ProgramPage(3, 103).code(), StatusCode::kFailedPrecondition);
  // Rewriting a programmed page without erase is also rejected.
  EXPECT_EQ(blk.ProgramPage(0, 200).code(), StatusCode::kFailedPrecondition);
}

TEST(NandBlockTest, FillsUp) {
  PageMetaPlanes planes;
  NandBlock blk = MakeTestBlock(planes, 3);
  for (uint32_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(blk.ProgramPage(p, p).ok());
  }
  EXPECT_TRUE(blk.IsFull());
  EXPECT_EQ(blk.ProgramPage(3, 3).code(), StatusCode::kOutOfRange);
}

TEST(NandBlockTest, ReadTagRoundtrip) {
  PageMetaPlanes planes;
  NandBlock blk = MakeTestBlock(planes, 4);
  ASSERT_TRUE(blk.ProgramPage(0, 0xdeadbeef).ok());
  Result<uint64_t> tag = blk.ReadTag(0);
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(tag.value(), 0xdeadbeefu);
}

TEST(NandBlockTest, ReadUnprogrammedFails) {
  PageMetaPlanes planes;
  NandBlock blk = MakeTestBlock(planes, 4);
  EXPECT_EQ(blk.ReadTag(0).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(blk.ReadTag(9).status().code(), StatusCode::kOutOfRange);
}

TEST(NandBlockTest, EraseResetsAndCharges) {
  PageMetaPlanes planes;
  NandBlock blk = MakeTestBlock(planes, 4);
  ASSERT_TRUE(blk.ProgramPage(0, 1).ok());
  ASSERT_TRUE(blk.Erase().ok());
  EXPECT_TRUE(blk.IsErased());
  EXPECT_EQ(blk.pe_cycles(), 1u);
  EXPECT_FALSE(blk.IsProgrammed(0));
  // Page 0 is programmable again after erase.
  EXPECT_TRUE(blk.ProgramPage(0, 2).ok());
}

TEST(NandBlockTest, EraseWearWeight) {
  PageMetaPlanes planes;
  NandBlock blk = MakeTestBlock(planes, 4);
  ASSERT_TRUE(blk.Erase(5).ok());
  EXPECT_EQ(blk.pe_cycles(), 5u);
  ASSERT_TRUE(blk.Erase(0).ok());
  EXPECT_EQ(blk.pe_cycles(), 5u);  // wear-free erase (merged-pool diversion)
}

TEST(NandBlockTest, BadBlockRejectsEverything) {
  PageMetaPlanes planes;
  NandBlock blk = MakeTestBlock(planes, 4);
  blk.MarkBad();
  EXPECT_EQ(blk.ProgramPage(0, 1).code(), StatusCode::kUnavailable);
  EXPECT_EQ(blk.Erase().code(), StatusCode::kUnavailable);
}

TEST(NandBlockTest, IsProgrammedTracksWritePointer) {
  PageMetaPlanes planes;
  NandBlock blk = MakeTestBlock(planes, 4);
  ASSERT_TRUE(blk.ProgramPage(0, 1).ok());
  ASSERT_TRUE(blk.ProgramPage(1, 2).ok());
  EXPECT_TRUE(blk.IsProgrammed(0));
  EXPECT_TRUE(blk.IsProgrammed(1));
  EXPECT_FALSE(blk.IsProgrammed(2));
}

}  // namespace
}  // namespace flashsim
