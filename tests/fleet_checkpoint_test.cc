// Fleet checkpoint/restore: a run killed at a checkpoint and resumed must
// produce a final report bit-identical to an uninterrupted run, checkpoints
// from a different spec are rejected, and files carrying sections this
// reader does not know (a future writer) load with the section skipped.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/campaign/spec.h"
#include "src/fleet/checkpoint.h"
#include "src/fleet/report.h"
#include "src/fleet/runner.h"
#include "src/simcore/snapshot.h"

namespace flashsim {
namespace {

constexpr char kFleetSpec[] = R"(
campaign cptest seed=42
workload attack pattern=random request=4KiB total=4MiB span=50%
fleet pop count=20 devices=blu512 workloads=attack scale=256x256 shard=4 slice=8MiB max_device_bytes=256MiB
)";

CampaignSpec ParseTestSpec(const std::string& text = kFleetSpec) {
  const Result<CampaignSpec> parsed = ParseCampaignSpec(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.value();
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string RunToReport(const CampaignSpec& spec, const FleetRunOptions& options) {
  const FleetSpec* fleet = spec.FindFleet("pop");
  EXPECT_NE(fleet, nullptr);
  Result<FleetOutcome> run = RunFleet(spec, *fleet, options);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  std::ostringstream os;
  WriteFleetJson(run.value(), os);
  return os.str();
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(FleetCheckpointTest, KillAtCheckpointThenResumeIsBitExact) {
  const CampaignSpec spec = ParseTestSpec();

  FleetRunOptions plain;
  plain.threads = 2;
  const std::string uninterrupted = RunToReport(spec, plain);

  const std::string cp_path = TempPath("fleet_cp.fsnp");
  FleetRunOptions killed;
  killed.threads = 2;
  killed.checkpoint_path = cp_path;
  killed.checkpoint_every_shards = 2;
  killed.stop_after_checkpoints = 1;  // controlled kill mid-campaign
  const FleetSpec* fleet = spec.FindFleet("pop");
  ASSERT_NE(fleet, nullptr);
  Result<FleetOutcome> partial = RunFleet(spec, *fleet, killed);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_FALSE(partial.value().completed);
  EXPECT_EQ(partial.value().checkpoints_written, 1u);

  FleetRunOptions resume;
  resume.threads = 3;  // a different thread count must not matter
  resume.resume_path = cp_path;
  const std::string resumed = RunToReport(spec, resume);
  EXPECT_EQ(resumed, uninterrupted);
  std::remove(cp_path.c_str());
}

// Satellite: delta-parked devices crossing a checkpoint kill+resume. The
// checkpoint canonicalizes every parked device to a self-contained kParkFull
// blob, so (a) a single-threaded checkpoint file is byte-identical whichever
// park mode produced it, (b) a checkpoint written under one mode resumes
// under the other, and (c) the resumed report matches a never-checkpointed
// run bit-for-bit.
TEST(FleetCheckpointTest, DeltaParkedKillResumeIsBitExactAcrossModes) {
  const CampaignSpec spec = ParseTestSpec();
  const FleetSpec* base = spec.FindFleet("pop");
  ASSERT_NE(base, nullptr);
  FleetSpec delta_fleet = *base;
  delta_fleet.park_mode = FleetParkMode::kDelta;
  FleetSpec full_fleet = *base;
  full_fleet.park_mode = FleetParkMode::kFull;

  FleetRunOptions plain;
  plain.threads = 2;
  Result<FleetOutcome> uninterrupted = RunFleet(spec, delta_fleet, plain);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().ToString();
  std::ostringstream plain_os;
  WriteFleetJson(uninterrupted.value(), plain_os);

  // Controlled kill under each park mode, single-threaded so the checkpoint
  // files themselves are comparable (deterministic schedule).
  auto kill_run = [&](const FleetSpec& fleet, const std::string& cp_path) {
    FleetRunOptions killed;
    killed.threads = 1;
    killed.checkpoint_path = cp_path;
    killed.checkpoint_every_shards = 2;
    killed.stop_after_checkpoints = 1;
    Result<FleetOutcome> partial = RunFleet(spec, fleet, killed);
    ASSERT_TRUE(partial.ok()) << partial.status().ToString();
    EXPECT_FALSE(partial.value().completed);
  };
  const std::string cp_delta = TempPath("fleet_cp_delta.fsnp");
  const std::string cp_full = TempPath("fleet_cp_full.fsnp");
  kill_run(delta_fleet, cp_delta);
  kill_run(full_fleet, cp_full);
  EXPECT_EQ(ReadFileBytes(cp_delta), ReadFileBytes(cp_full))
      << "checkpoint files must be canonical across park modes";

  // Cross-mode resume: the delta-mode checkpoint resumed under both modes
  // (and at a different thread count) reproduces the uninterrupted report.
  for (const FleetSpec* resume_fleet : {&delta_fleet, &full_fleet}) {
    FleetRunOptions resume;
    resume.threads = 3;
    resume.resume_path = cp_delta;
    Result<FleetOutcome> resumed = RunFleet(spec, *resume_fleet, resume);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    std::ostringstream os;
    WriteFleetJson(resumed.value(), os);
    EXPECT_EQ(os.str(), plain_os.str());
  }
  std::remove(cp_delta.c_str());
  std::remove(cp_full.c_str());
}

TEST(FleetCheckpointTest, RejectsCheckpointFromDifferentSpec) {
  const CampaignSpec spec = ParseTestSpec();
  const FleetSpec* fleet = spec.FindFleet("pop");
  ASSERT_NE(fleet, nullptr);

  const std::string cp_path = TempPath("fleet_cp_mismatch.fsnp");
  FleetRunOptions killed;
  killed.threads = 1;
  killed.checkpoint_path = cp_path;
  killed.checkpoint_every_shards = 1;
  killed.stop_after_checkpoints = 1;
  ASSERT_TRUE(RunFleet(spec, *fleet, killed).ok());

  // Same structure, different campaign seed → different trajectories; the
  // fingerprint must refuse to resume.
  std::string other_text = kFleetSpec;
  const size_t pos = other_text.find("seed=42");
  ASSERT_NE(pos, std::string::npos);
  other_text.replace(pos, 7, "seed=43");
  const CampaignSpec other = ParseTestSpec(other_text);
  const FleetSpec* other_fleet = other.FindFleet("pop");
  ASSERT_NE(other_fleet, nullptr);

  Result<FleetCheckpointState> loaded =
      ReadFleetCheckpoint(cp_path, other, *other_fleet);
  EXPECT_FALSE(loaded.ok());
  std::remove(cp_path.c_str());
}

// Satellite: a checkpoint carrying a section tag this reader does not know —
// as a newer writer would produce — loads fine, with the unknown section
// skipped. The FSNP container locates sections by tag and scans past
// unknown ones, so we splice a synthetic "ZZZZ" section directly after the
// manifest and also append one at the end of the file.
TEST(FleetCheckpointTest, UnknownTrailingSectionIsSkipped) {
  const CampaignSpec spec = ParseTestSpec();
  const FleetSpec* fleet = spec.FindFleet("pop");
  ASSERT_NE(fleet, nullptr);

  const std::string cp_path = TempPath("fleet_cp_future.fsnp");
  FleetRunOptions killed;
  killed.threads = 2;
  killed.checkpoint_path = cp_path;
  killed.checkpoint_every_shards = 2;
  killed.stop_after_checkpoints = 1;
  ASSERT_TRUE(RunFleet(spec, *fleet, killed).ok());

  std::vector<uint8_t> bytes = ReadFileBytes(cp_path);
  ASSERT_GT(bytes.size(), 24u);

  // Container layout: 12-byte header, then sections of
  // { tag u32 | length u64 | payload }. Find the end of the first section
  // (the FMAN manifest) and splice an unknown section there.
  auto read_u64 = [&](size_t at) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(bytes[at + static_cast<size_t>(i)]) << (8 * i);
    }
    return v;
  };
  const size_t manifest_len = static_cast<size_t>(read_u64(16));
  const size_t splice_at = 12 + 4 + 8 + manifest_len;
  ASSERT_LT(splice_at, bytes.size());

  std::vector<uint8_t> unknown;
  const char tag[4] = {'Z', 'Z', 'Z', 'Z'};
  for (char c : tag) {
    unknown.push_back(static_cast<uint8_t>(c));
  }
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7};
  for (int i = 0; i < 8; ++i) {
    unknown.push_back(
        static_cast<uint8_t>((payload.size() >> (8 * i)) & 0xff));
  }
  unknown.insert(unknown.end(), payload.begin(), payload.end());

  bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(splice_at),
               unknown.begin(), unknown.end());
  // And a trailing unknown section after all known data.
  bytes.insert(bytes.end(), unknown.begin(), unknown.end());
  WriteFileBytes(cp_path, bytes);

  Result<FleetCheckpointState> loaded =
      ReadFleetCheckpoint(cp_path, spec, *fleet);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().device_count, fleet->device_count);

  // The doctored checkpoint must still resume to the uninterrupted report.
  FleetRunOptions plain;
  plain.threads = 1;
  const std::string uninterrupted = RunToReport(spec, plain);
  FleetRunOptions resume;
  resume.threads = 2;
  resume.resume_path = cp_path;
  EXPECT_EQ(RunToReport(spec, resume), uninterrupted);
  std::remove(cp_path.c_str());
}

}  // namespace
}  // namespace flashsim
