#include "src/simcore/stats.h"

#include <gtest/gtest.h>

namespace flashsim {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(LogHistogramTest, BucketsByPowerOfTwo) {
  LogHistogram h;
  h.Add(0);
  h.Add(1);
  h.Add(2);
  h.Add(3);
  h.Add(4);
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_EQ(h.BucketCount(0), 2u);  // 0 and 1
  EXPECT_EQ(h.BucketCount(1), 2u);  // 2 and 3
  EXPECT_EQ(h.BucketCount(2), 1u);  // 4
}

TEST(LogHistogramTest, QuantileEmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.ApproxQuantile(0.5), 0u);
}

TEST(LogHistogramTest, QuantileFindsBucket) {
  LogHistogram h;
  for (int i = 0; i < 90; ++i) {
    h.Add(100);  // bucket 6 (64..127)
  }
  for (int i = 0; i < 10; ++i) {
    h.Add(100000);  // bucket 16
  }
  EXPECT_EQ(h.ApproxQuantile(0.5), 64u);
  EXPECT_EQ(h.ApproxQuantile(0.99), 65536u);
}

TEST(LogHistogramTest, QuantileClampsInput) {
  LogHistogram h;
  h.Add(10);
  EXPECT_EQ(h.ApproxQuantile(-1.0), h.ApproxQuantile(0.0));
  EXPECT_EQ(h.ApproxQuantile(2.0), h.ApproxQuantile(1.0));
}

TEST(LogHistogramTest, ResetClears) {
  LogHistogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
}

TEST(RateMeterTest, ComputesBandwidth) {
  RateMeter m;
  m.Record(1024 * 1024, SimDuration::Seconds(1));
  EXPECT_DOUBLE_EQ(m.MiBPerSec(), 1.0);
  m.Record(1024 * 1024, SimDuration::Seconds(1));
  EXPECT_DOUBLE_EQ(m.MiBPerSec(), 1.0);
  EXPECT_EQ(m.operations(), 2u);
  EXPECT_EQ(m.total_bytes(), 2u * 1024 * 1024);
}

TEST(RateMeterTest, ZeroTimeIsZeroRate) {
  RateMeter m;
  m.Record(4096, SimDuration());
  EXPECT_DOUBLE_EQ(m.MiBPerSec(), 0.0);
}

TEST(CounterSetTest, IncrementAndGet) {
  CounterSet c;
  EXPECT_EQ(c.Get("x"), 0u);
  c.Increment("x");
  c.Increment("x", 4);
  c.Increment("y");
  EXPECT_EQ(c.Get("x"), 5u);
  EXPECT_EQ(c.Get("y"), 1u);
  EXPECT_EQ(c.counters().size(), 2u);
  c.Reset();
  EXPECT_EQ(c.Get("x"), 0u);
}

}  // namespace
}  // namespace flashsim
