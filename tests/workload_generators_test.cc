#include "src/workload/generators.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/simcore/snapshot.h"
#include "src/simcore/units.h"
#include "src/workload/access_pattern.h"

namespace flashsim {
namespace {

constexpr uint64_t kTarget = 16 * kMiB;

std::vector<WorkloadOp> Drain(Workload& workload, uint64_t target = kTarget) {
  std::vector<WorkloadOp> ops;
  WorkloadOp op;
  while (workload.Next(target, &op)) {
    ops.push_back(op);
  }
  return ops;
}

SyntheticWorkloadConfig BaseConfig(AccessPattern pattern) {
  SyntheticWorkloadConfig config;
  config.pattern = pattern;
  config.request_bytes = 4096;
  config.total_bytes = 1 * kMiB;
  return config;
}

TEST(AccessPatternTest, ParseAcceptsCanonicalNamesAndAliases) {
  const struct {
    const char* text;
    AccessPattern want;
  } cases[] = {
      {"sequential", AccessPattern::kSequential},
      {"seq", AccessPattern::kSequential},
      {"random", AccessPattern::kRandom},
      {"rand", AccessPattern::kRandom},
      {"strided", AccessPattern::kStrided},
      {"stride", AccessPattern::kStrided},
      {"zipf", AccessPattern::kZipf},
      {"hotcold", AccessPattern::kHotCold},
      {"hot-cold", AccessPattern::kHotCold},
  };
  for (const auto& c : cases) {
    AccessPattern got = AccessPattern::kSequential;
    EXPECT_TRUE(ParseAccessPattern(c.text, &got)) << c.text;
    EXPECT_EQ(got, c.want) << c.text;
  }
  AccessPattern untouched = AccessPattern::kZipf;
  EXPECT_FALSE(ParseAccessPattern("bogus", &untouched));
  EXPECT_EQ(untouched, AccessPattern::kZipf);
}

TEST(AccessPatternTest, NamesRoundTripThroughParse) {
  for (AccessPattern p :
       {AccessPattern::kSequential, AccessPattern::kRandom, AccessPattern::kStrided,
        AccessPattern::kZipf, AccessPattern::kHotCold}) {
    AccessPattern got = AccessPattern::kSequential;
    ASSERT_TRUE(ParseAccessPattern(AccessPatternName(p), &got));
    EXPECT_EQ(got, p);
  }
}

TEST(SyntheticWorkloadTest, SequentialCoversSpanInOrder) {
  SyntheticWorkloadConfig config = BaseConfig(AccessPattern::kSequential);
  config.total_bytes = 64 * 4096;
  SyntheticWorkload workload(config);
  const std::vector<WorkloadOp> ops = Drain(workload);
  ASSERT_EQ(ops.size(), 64u);
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(ops[i].offset, i * 4096) << i;
    EXPECT_EQ(ops[i].length, 4096u);
    EXPECT_EQ(ops[i].kind, IoKind::kWrite);
  }
}

TEST(SyntheticWorkloadTest, StreamProducesExactlyTotalBytes) {
  for (AccessPattern pattern :
       {AccessPattern::kSequential, AccessPattern::kRandom, AccessPattern::kStrided,
        AccessPattern::kZipf, AccessPattern::kHotCold}) {
    SyntheticWorkload workload(BaseConfig(pattern));
    uint64_t total = 0;
    for (const WorkloadOp& op : Drain(workload)) {
      total += op.length;
    }
    EXPECT_EQ(total, 1 * kMiB) << AccessPatternName(pattern);
  }
}

TEST(SyntheticWorkloadTest, AllPatternsStayInsideSpan) {
  for (AccessPattern pattern :
       {AccessPattern::kSequential, AccessPattern::kRandom, AccessPattern::kStrided,
        AccessPattern::kZipf, AccessPattern::kHotCold}) {
    SyntheticWorkloadConfig config = BaseConfig(pattern);
    config.span_bytes = 2 * kMiB;
    config.start_offset = 4 * kMiB;
    SyntheticWorkload workload(config);
    for (const WorkloadOp& op : Drain(workload)) {
      EXPECT_GE(op.offset, 4 * kMiB) << AccessPatternName(pattern);
      EXPECT_LE(op.offset + op.length, 6 * kMiB) << AccessPatternName(pattern);
      EXPECT_EQ(op.offset % 4096, 0u) << AccessPatternName(pattern);
    }
  }
}

TEST(SyntheticWorkloadTest, SpanFractionWinsOverSpanBytes) {
  SyntheticWorkloadConfig config = BaseConfig(AccessPattern::kRandom);
  config.span_bytes = 8 * kMiB;
  config.span_fraction = 0.25;  // 4 MiB of the 16 MiB target
  SyntheticWorkload workload(config);
  uint64_t start = 0;
  uint64_t length = 0;
  workload.TouchRange(kTarget, &start, &length);
  EXPECT_EQ(start, 0u);
  EXPECT_EQ(length, 4 * kMiB);
  for (const WorkloadOp& op : Drain(workload)) {
    EXPECT_LE(op.offset + op.length, 4 * kMiB);
  }
}

TEST(SyntheticWorkloadTest, SameSeedSameStream) {
  SyntheticWorkloadConfig config = BaseConfig(AccessPattern::kRandom);
  SyntheticWorkload a(config);
  SyntheticWorkload b(config);
  a.Reset(99);
  b.Reset(99);
  const std::vector<WorkloadOp> ops_a = Drain(a);
  const std::vector<WorkloadOp> ops_b = Drain(b);
  ASSERT_EQ(ops_a.size(), ops_b.size());
  for (size_t i = 0; i < ops_a.size(); ++i) {
    EXPECT_EQ(ops_a[i].offset, ops_b[i].offset) << i;
    EXPECT_EQ(ops_a[i].kind, ops_b[i].kind) << i;
  }
}

TEST(SyntheticWorkloadTest, DifferentSeedsDifferentStreams) {
  SyntheticWorkloadConfig config = BaseConfig(AccessPattern::kRandom);
  SyntheticWorkload a(config);
  SyntheticWorkload b(config);
  a.Reset(1);
  b.Reset(2);
  const std::vector<WorkloadOp> ops_a = Drain(a);
  const std::vector<WorkloadOp> ops_b = Drain(b);
  ASSERT_EQ(ops_a.size(), ops_b.size());
  size_t differing = 0;
  for (size_t i = 0; i < ops_a.size(); ++i) {
    differing += ops_a[i].offset != ops_b[i].offset ? 1 : 0;
  }
  EXPECT_GT(differing, ops_a.size() / 2);
}

TEST(SyntheticWorkloadTest, ResetRewindsTheStream) {
  SyntheticWorkload workload(BaseConfig(AccessPattern::kZipf));
  workload.Reset(5);
  const std::vector<WorkloadOp> first = Drain(workload);
  WorkloadOp op;
  EXPECT_FALSE(workload.Next(kTarget, &op));  // exhausted
  workload.Reset(5);
  const std::vector<WorkloadOp> second = Drain(workload);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].offset, second[i].offset) << i;
  }
}

TEST(SyntheticWorkloadTest, StridedEventuallyCoversAllSlots) {
  SyntheticWorkloadConfig config = BaseConfig(AccessPattern::kStrided);
  config.span_bytes = 64 * 4096;
  config.stride_bytes = 4 * 4096;
  config.total_bytes = 64 * 4096;
  SyntheticWorkload workload(config);
  std::set<uint64_t> offsets;
  for (const WorkloadOp& op : Drain(workload)) {
    offsets.insert(op.offset);
  }
  // One full pass over the span must hit every slot exactly once (the phase
  // shifts on wrap so the stride does not revisit the same residue class).
  EXPECT_EQ(offsets.size(), 64u);
}

TEST(SyntheticWorkloadTest, ZipfConcentratesOnHotSlots) {
  SyntheticWorkloadConfig config = BaseConfig(AccessPattern::kZipf);
  config.span_bytes = 256 * 4096;
  config.total_bytes = 4 * kMiB;
  config.zipf_theta = 0.99;
  SyntheticWorkload workload(config);
  std::map<uint64_t, uint64_t> hits;
  uint64_t total = 0;
  for (const WorkloadOp& op : Drain(workload)) {
    ++hits[op.offset];
    ++total;
  }
  uint64_t hottest = 0;
  for (const auto& [offset, count] : hits) {
    hottest = std::max(hottest, count);
  }
  // Uniform would give total/256 per slot; Zipf(0.99) gives the hottest slot
  // a large multiple of that.
  EXPECT_GT(hottest, 5 * total / 256);
}

TEST(SyntheticWorkloadTest, HotColdRespectsHotProbability) {
  SyntheticWorkloadConfig config = BaseConfig(AccessPattern::kHotCold);
  config.span_bytes = 1 * kMiB;
  config.total_bytes = 4 * kMiB;
  config.hot_fraction = 0.1;
  config.hot_probability = 0.9;
  SyntheticWorkload workload(config);
  const uint64_t hot_end = static_cast<uint64_t>(0.1 * (1 * kMiB));
  uint64_t hot_hits = 0;
  uint64_t total = 0;
  for (const WorkloadOp& op : Drain(workload)) {
    hot_hits += op.offset < hot_end ? 1 : 0;
    ++total;
  }
  EXPECT_NEAR(static_cast<double>(hot_hits) / static_cast<double>(total), 0.9, 0.05);
}

TEST(SyntheticWorkloadTest, ReadFractionMixesKinds) {
  SyntheticWorkloadConfig config = BaseConfig(AccessPattern::kRandom);
  config.total_bytes = 4 * kMiB;
  config.read_fraction = 0.3;
  SyntheticWorkload workload(config);
  EXPECT_TRUE(workload.MayRead());
  uint64_t reads = 0;
  uint64_t total = 0;
  for (const WorkloadOp& op : Drain(workload)) {
    reads += op.kind == IoKind::kRead ? 1 : 0;
    ++total;
  }
  EXPECT_NEAR(static_cast<double>(reads) / static_cast<double>(total), 0.3, 0.05);

  SyntheticWorkload write_only(BaseConfig(AccessPattern::kRandom));
  EXPECT_FALSE(write_only.MayRead());
}

TEST(SyntheticWorkloadTest, BurstIdleDutyCycle) {
  SyntheticWorkloadConfig config = BaseConfig(AccessPattern::kSequential);
  config.total_bytes = 64 * 4096;
  config.burst_requests = 8;
  config.idle_time = SimDuration::Millis(5);
  SyntheticWorkload workload(config);
  const std::vector<WorkloadOp> ops = Drain(workload);
  ASSERT_EQ(ops.size(), 64u);
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i > 0 && i % 8 == 0) {
      EXPECT_EQ(ops[i].pre_idle.nanos(), SimDuration::Millis(5).nanos()) << i;
    } else {
      EXPECT_EQ(ops[i].pre_idle.nanos(), 0) << i;
    }
  }
}

TEST(SyntheticWorkloadTest, FinalRequestClippedToTotal) {
  SyntheticWorkloadConfig config = BaseConfig(AccessPattern::kSequential);
  config.request_bytes = 4096;
  config.total_bytes = 4096 * 3 + 1000;  // not a multiple of the request size
  SyntheticWorkload workload(config);
  const std::vector<WorkloadOp> ops = Drain(workload);
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops.back().length, 1000u);
}

// The fleet runner parks a device mid-stream by snapshotting its workload
// next to the device state; a restored workload must continue with exactly
// the ops the uninterrupted one would have produced.
TEST(SyntheticWorkloadTest, SaveLoadContinuesBitExactly) {
  for (const AccessPattern pattern :
       {AccessPattern::kSequential, AccessPattern::kRandom,
        AccessPattern::kZipf, AccessPattern::kHotCold}) {
    SyntheticWorkloadConfig config = BaseConfig(pattern);
    config.total_bytes = 64 * kMiB;  // long enough to not run dry mid-test
    config.read_fraction = 0.3;
    config.burst_requests = 8;
    config.idle_time = SimDuration::Micros(50);
    SyntheticWorkload original(config);
    original.Reset(0xabcdef);

    // Consume a prefix, snapshot, then race the original against a restored
    // copy for the next stretch of the stream.
    WorkloadOp op;
    for (int i = 0; i < 137; ++i) {
      ASSERT_TRUE(original.Next(kTarget, &op));
    }
    SnapshotWriter w;
    original.SaveState(w);
    SnapshotReader r(w.buffer());
    SyntheticWorkload restored(config);
    ASSERT_TRUE(restored.LoadState(r).ok());

    for (int i = 0; i < 500; ++i) {
      WorkloadOp a;
      WorkloadOp b;
      ASSERT_EQ(original.Next(kTarget, &a), restored.Next(kTarget, &b));
      EXPECT_EQ(a.kind, b.kind) << "op " << i;
      EXPECT_EQ(a.offset, b.offset) << "op " << i;
      EXPECT_EQ(a.length, b.length) << "op " << i;
      EXPECT_EQ(a.pre_idle.nanos(), b.pre_idle.nanos()) << "op " << i;
    }
  }
}

TEST(ZipfSamplerTest, SamplesInRangeAndSkewed) {
  ZipfSampler sampler(100, 0.99);
  Rng rng(7);
  std::vector<uint64_t> hits(100, 0);
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t rank = sampler.Sample(rng);
    ASSERT_LT(rank, 100u);
    ++hits[rank];
  }
  // Rank 0 is the hottest and the tail decays monotonically in aggregate.
  EXPECT_GT(hits[0], hits[50]);
  EXPECT_GT(hits[0], static_cast<uint64_t>(kSamples) / 100);
}

}  // namespace
}  // namespace flashsim
