#include "src/wearlab/wearout_experiment.h"

#include <gtest/gtest.h>

#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

std::unique_ptr<FlashDevice> SmallEmmc() {
  return MakeEmmc8(SimScale{64, 64}, /*seed=*/3);
}

WearWorkloadConfig SmallWorkload() {
  WearWorkloadConfig w;
  w.footprint_bytes = 8 * kMiB;
  return w;
}

TEST(WearOutExperimentTest, RecordsTransitionsInOrder) {
  auto device = SmallEmmc();
  WearOutExperiment exp(*device, SmallWorkload());
  const WearRunOutcome out = exp.Run(3, 64 * kGiB);
  ASSERT_GE(out.transitions.size(), 3u);
  EXPECT_EQ(out.transitions[0].from_level, 1u);
  EXPECT_EQ(out.transitions[0].to_level, 2u);
  EXPECT_EQ(out.transitions[1].from_level, 2u);
  EXPECT_EQ(out.transitions[2].from_level, 3u);
  for (const WearTransition& t : out.transitions) {
    EXPECT_EQ(t.type, WearType::kSinglePool);
    EXPECT_GT(t.host_bytes, 0u);
    EXPECT_GT(t.hours, 0.0);
    EXPECT_GE(t.write_amplification, 0.9);
  }
}

TEST(WearOutExperimentTest, VolumePerLevelRoughlyConstant) {
  auto device = SmallEmmc();
  WearOutExperiment exp(*device, SmallWorkload());
  const WearRunOutcome out = exp.Run(5, 64 * kGiB);
  ASSERT_GE(out.transitions.size(), 5u);
  // Figure 2's observation: volume per level is near constant (skip the
  // first level, which includes wear-in).
  const uint64_t ref = out.transitions[1].host_bytes;
  for (size_t i = 2; i < out.transitions.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(out.transitions[i].host_bytes),
                static_cast<double>(ref), 0.25 * static_cast<double>(ref));
  }
}

TEST(WearOutExperimentTest, VolumeCapHonored) {
  auto device = SmallEmmc();
  WearOutExperiment exp(*device, SmallWorkload());
  const WearRunOutcome out = exp.Run(100, 4 * kMiB);
  EXPECT_TRUE(out.volume_cap_hit);
  EXPECT_LE(out.total_host_bytes, 5 * kMiB);
}

TEST(WearOutExperimentTest, RunUntilLevelStopsAtTarget) {
  auto device = SmallEmmc();
  WearOutExperiment exp(*device, SmallWorkload());
  const WearRunOutcome out = exp.RunUntilLevel(WearType::kSinglePool, 4, 64 * kGiB);
  EXPECT_FALSE(out.transitions.empty());
  EXPECT_EQ(device->QueryHealth().life_time_est_a, 4u);
}

TEST(WearOutExperimentTest, SetUtilizationPrefills) {
  auto device = SmallEmmc();
  WearOutExperiment exp(*device, SmallWorkload());
  ASSERT_TRUE(exp.SetUtilization(0.5).ok());
  EXPECT_NEAR(device->ftl().Utilization(), 0.5, 0.05);
  // Shrinking trims the static data back.
  ASSERT_TRUE(exp.SetUtilization(0.2).ok());
  EXPECT_NEAR(device->ftl().Utilization(), 0.2, 0.05);
}

TEST(WearOutExperimentTest, PatternLabels) {
  auto device = SmallEmmc();
  WearWorkloadConfig w = SmallWorkload();
  WearOutExperiment exp(*device, w);
  EXPECT_EQ(exp.PatternLabel(), "4.00 KiB rand");
  w.pattern = AccessPattern::kSequential;
  w.request_bytes = 128 * 1024;
  exp.SetWorkload(w);
  EXPECT_EQ(exp.PatternLabel(), "128.00 KiB seq");
  w.pattern = AccessPattern::kRandom;
  w.request_bytes = 4096;
  w.rewrite_utilized = true;
  exp.SetWorkload(w);
  EXPECT_EQ(exp.PatternLabel(), "4.00 KiB rand rewrite");
}

TEST(WearOutExperimentTest, RewriteUtilizedTargetsStaticData) {
  auto device = SmallEmmc();
  WearWorkloadConfig w = SmallWorkload();
  w.rewrite_utilized = true;
  WearOutExperiment exp(*device, w);
  ASSERT_TRUE(exp.SetUtilization(0.6).ok());
  const WearRunOutcome out = exp.Run(1, 32 * kMiB);
  // Utilization unchanged: rewrites replace live data rather than extending.
  EXPECT_NEAR(device->ftl().Utilization(), 0.6, 0.05);
  EXPECT_TRUE(out.volume_cap_hit || !out.transitions.empty());
}

TEST(WearOutExperimentTest, UnsupportedHealthYieldsNoTransitions) {
  auto device = MakeBlu512(SimScale{16, 16}, 3);
  WearWorkloadConfig w;
  w.footprint_bytes = 2 * kMiB;
  WearOutExperiment exp(*device, w);
  const WearRunOutcome out = exp.Run(1, 16 * kMiB);
  EXPECT_TRUE(out.transitions.empty());
  EXPECT_TRUE(out.volume_cap_hit);
}

TEST(WearOutExperimentTest, RunsToBrickOnTinyDevice) {
  auto device = MakeBlu512(SimScale{16, 16}, 3);
  WearWorkloadConfig w;
  w.footprint_bytes = 2 * kMiB;
  w.request_bytes = 64 * 1024;
  WearOutExperiment exp(*device, w);
  const WearRunOutcome out = exp.Run(1, 1 * kTiB);
  EXPECT_TRUE(out.bricked);
  EXPECT_TRUE(device->IsReadOnly());
}

TEST(WearOutExperimentTest, HybridEmitsBothTypes) {
  auto device = MakeEmmc16(SimScale{64, 64}, 3);
  WearWorkloadConfig w;
  w.footprint_bytes = 8 * kMiB;
  WearOutExperiment exp(*device, w);
  const WearRunOutcome out = exp.RunUntilLevel(WearType::kTypeB, 4, 128 * kGiB);
  bool saw_b = false;
  for (const WearTransition& t : out.transitions) {
    if (t.type == WearType::kTypeB) {
      saw_b = true;
    }
  }
  EXPECT_TRUE(saw_b);
}

TEST(WearTypeTest, Names) {
  EXPECT_STREQ(WearTypeName(WearType::kTypeA), "Type A");
  EXPECT_STREQ(WearTypeName(WearType::kTypeB), "Type B");
  EXPECT_STREQ(WearTypeName(WearType::kSinglePool), "device");
}

}  // namespace
}  // namespace flashsim
