#include "src/ftl/free_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

namespace flashsim {
namespace {

TEST(FreePoolTest, StartsEmpty) {
  WearBucketedFreePool pool;
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_TRUE(pool.Entries().empty());
}

TEST(FreePoolTest, PopsAscendingWearThenBlockId) {
  WearBucketedFreePool pool;
  // Scattered insertion order; pops must come out sorted by (pe, id) — the
  // exact iteration order of the std::set<std::pair> the pool replaces.
  const std::vector<std::pair<uint32_t, BlockId>> entries = {
      {5, 7}, {0, 9}, {5, 2}, {3, 1}, {0, 3}, {12, 0}, {3, 8}, {0, 4},
  };
  for (const auto& [pe, id] : entries) {
    pool.Insert(pe, id);
  }
  EXPECT_EQ(pool.size(), entries.size());

  std::vector<std::pair<uint32_t, BlockId>> expected = entries;
  std::sort(expected.begin(), expected.end());
  for (const auto& [pe, id] : expected) {
    const WearBucketedFreePool::Entry peek = pool.PeekMin();
    EXPECT_EQ(peek.pe_cycles, pe);
    EXPECT_EQ(peek.block, id);
    const WearBucketedFreePool::Entry e = pool.PopMin();
    EXPECT_EQ(e.pe_cycles, pe);
    EXPECT_EQ(e.block, id);
  }
  EXPECT_TRUE(pool.empty());
}

TEST(FreePoolTest, ReinsertAfterPopWithHigherWear) {
  WearBucketedFreePool pool;
  pool.Insert(0, 1);
  pool.Insert(0, 2);
  // Block 1 gets erased (wear 0 -> 1) and returns to the pool; block 2 is
  // now the least-worn and must pop first.
  const WearBucketedFreePool::Entry first = pool.PopMin();
  EXPECT_EQ(first.block, 1u);
  pool.Insert(1, 1);
  EXPECT_EQ(pool.PopMin().block, 2u);
  EXPECT_EQ(pool.PopMin().block, 1u);
  EXPECT_TRUE(pool.empty());
}

TEST(FreePoolTest, CursorRewindsWhenLowerWearArrives) {
  WearBucketedFreePool pool;
  pool.Insert(10, 5);
  EXPECT_EQ(pool.PopMin().pe_cycles, 10u);
  // The min-bucket cursor sat at 10; a fresher block (healed or late-added
  // spare) must still pop first.
  pool.Insert(10, 5);
  pool.Insert(2, 6);
  EXPECT_EQ(pool.PeekMin().pe_cycles, 2u);
  EXPECT_EQ(pool.PopMin().block, 6u);
  EXPECT_EQ(pool.PopMin().block, 5u);
}

TEST(FreePoolTest, EntriesSnapshotsEverything) {
  WearBucketedFreePool pool;
  pool.Insert(1, 10);
  pool.Insert(4, 11);
  pool.Insert(1, 12);
  std::vector<std::pair<uint32_t, BlockId>> got;
  for (const WearBucketedFreePool::Entry& e : pool.Entries()) {
    got.emplace_back(e.pe_cycles, e.block);
  }
  std::sort(got.begin(), got.end());
  const std::vector<std::pair<uint32_t, BlockId>> want = {{1, 10}, {1, 12}, {4, 11}};
  EXPECT_EQ(got, want);
  // Snapshotting does not consume entries.
  EXPECT_EQ(pool.size(), 3u);
}

TEST(FreePoolTest, ClearEmptiesThePool) {
  WearBucketedFreePool pool;
  pool.Insert(3, 1);
  pool.Insert(7, 2);
  pool.Clear();
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.size(), 0u);
  // Usable again after Clear.
  pool.Insert(0, 4);
  EXPECT_EQ(pool.PopMin().block, 4u);
}

TEST(FreePoolTest, DrainToExhaustionAndRefill) {
  WearBucketedFreePool pool;
  // Simulates spare exhaustion: drain the pool dry, then refill, repeatedly.
  for (int round = 0; round < 3; ++round) {
    for (BlockId b = 0; b < 16; ++b) {
      pool.Insert(static_cast<uint32_t>(round * 2 + b % 2), b);
    }
    uint32_t last_pe = 0;
    BlockId last_id = 0;
    bool first = true;
    while (!pool.empty()) {
      const WearBucketedFreePool::Entry e = pool.PopMin();
      if (!first) {
        EXPECT_TRUE(e.pe_cycles > last_pe ||
                    (e.pe_cycles == last_pe && e.block > last_id));
      }
      first = false;
      last_pe = e.pe_cycles;
      last_id = e.block;
    }
    EXPECT_EQ(pool.size(), 0u);
  }
}

}  // namespace
}  // namespace flashsim
