#include "src/blockdev/perf_model.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/blockdev/block_device.h"
#include "src/blockdev/io_queue.h"

namespace flashsim {
namespace {

PerfModelConfig BaseConfig() {
  PerfModelConfig cfg;
  cfg.per_request_overhead = SimDuration::Micros(100);
  cfg.bus_mib_per_sec = 100.0;
  cfg.effective_parallelism = 8;
  return cfg;
}

TEST(PerfModelTest, OverheadDominatesTinyRequests) {
  PerfModel model(BaseConfig());
  const SimDuration t = model.ServiceTime(512, SimDuration::Micros(8), true);
  // 100us overhead + max(~5us transfer, 1us array) => just over 100us.
  EXPECT_GE(t, SimDuration::Micros(100));
  EXPECT_LT(t, SimDuration::Micros(120));
}

TEST(PerfModelTest, TransferAndArrayPipeline) {
  PerfModel model(BaseConfig());
  // Array-bound: 8ms serial array / 8 = 1ms >> transfer of 4 KiB.
  const SimDuration array_bound =
      model.ServiceTime(4096, SimDuration::Millis(8), true);
  EXPECT_GE(array_bound, SimDuration::Millis(1));
  EXPECT_LT(array_bound, SimDuration::Micros(1200));
  // Transfer-bound: 10 MiB at 100 MiB/s = 100ms >> tiny array time.
  const SimDuration transfer_bound =
      model.ServiceTime(10 * 1024 * 1024, SimDuration::Micros(10), true);
  EXPECT_GE(transfer_bound, SimDuration::Millis(99));
  EXPECT_LT(transfer_bound, SimDuration::Millis(110));
}

TEST(PerfModelTest, RandomPenaltyOnlyWhenNotSequential) {
  PerfModelConfig cfg = BaseConfig();
  cfg.random_write_penalty = SimDuration::Millis(3);
  PerfModel model(cfg);
  const SimDuration seq = model.ServiceTime(4096, SimDuration::Micros(100), true);
  const SimDuration rand = model.ServiceTime(4096, SimDuration::Micros(100), false);
  EXPECT_EQ((rand - seq).nanos(), SimDuration::Millis(3).nanos());
}

TEST(PerfModelTest, MonotonicInArrayTime) {
  PerfModel model(BaseConfig());
  SimDuration prev;
  for (int ms = 1; ms <= 32; ms *= 2) {
    const SimDuration t = model.ServiceTime(4096, SimDuration::Millis(ms), true);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(PerfModelTest, ParallelismDividesArrayTime) {
  PerfModelConfig one = BaseConfig();
  one.effective_parallelism = 1;
  PerfModelConfig eight = BaseConfig();
  eight.effective_parallelism = 8;
  const SimDuration array = SimDuration::Millis(8);
  const SimDuration t1 = PerfModel(one).ServiceTime(4096, array, true);
  const SimDuration t8 = PerfModel(eight).ServiceTime(4096, array, true);
  // 8ms vs 1ms array component (plus equal overhead).
  EXPECT_GT(t1.nanos(), t8.nanos() * 4);
}

TEST(PerfModelTest, ZeroParallelismTreatedAsOne) {
  PerfModelConfig cfg = BaseConfig();
  cfg.effective_parallelism = 0;
  PerfModel model(cfg);
  const SimDuration t = model.ServiceTime(4096, SimDuration::Millis(1), true);
  EXPECT_GE(t, SimDuration::Millis(1));
}

TEST(PerfModelTest, PlateauIsMinOfArrayAndBus) {
  // Array limit: 4 KiB * 8 / 800us = 39 MiB/s < bus 100 => array-limited.
  PerfModel model(BaseConfig());
  const double plateau = model.PlateauMiBPerSec(4096, SimDuration::Micros(800));
  EXPECT_NEAR(plateau, 39.06, 0.5);
  // Faster array: bus-limited.
  PerfModelConfig wide = BaseConfig();
  wide.effective_parallelism = 64;
  EXPECT_DOUBLE_EQ(PerfModel(wide).PlateauMiBPerSec(4096, SimDuration::Micros(800)),
                   100.0);
}

// Property: service time is monotone nondecreasing in request size when the
// array time scales with the request (the realistic coupling).
class PerfMonotoneSize : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PerfMonotoneSize, ServiceGrowsWithSize) {
  PerfModelConfig cfg = BaseConfig();
  cfg.effective_parallelism = GetParam();
  PerfModel model(cfg);
  SimDuration prev;
  for (uint64_t bytes = 512; bytes <= 16 * 1024 * 1024; bytes *= 2) {
    const uint64_t pages = (bytes + 4095) / 4096;
    const SimDuration array = SimDuration::Micros(800) * static_cast<int64_t>(pages);
    const SimDuration t = model.ServiceTime(bytes, array, true);
    EXPECT_GE(t, prev) << "bytes=" << bytes;
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Parallelism, PerfMonotoneSize,
                         ::testing::Values(1u, 4u, 16u, 64u));

TEST(PerfModelTest, ZeroLatencyConfigIsSafe) {
  // A free device: no overhead, no bus stage, no array time. Must not divide
  // by zero and must return exactly zero service.
  PerfModelConfig cfg;
  cfg.per_request_overhead = SimDuration();
  cfg.bus_mib_per_sec = 0.0;
  cfg.effective_parallelism = 1;
  PerfModel model(cfg);
  EXPECT_EQ(model.ServiceTime(1 * 1024 * 1024, SimDuration(), true).nanos(), 0);
  EXPECT_EQ(model.ServiceTime(0, SimDuration(), false).nanos(), 0);
  // The plateau of a zero-program-time array is the bus limit, not inf/NaN.
  cfg.bus_mib_per_sec = 100.0;
  EXPECT_DOUBLE_EQ(PerfModel(cfg).PlateauMiBPerSec(4096, SimDuration()), 100.0);
}

TEST(PerfModelTest, HugeTransferSaturatesInsteadOfOverflowing) {
  // ~18.4 EB at 1 MiB/s is ~5.6e14 seconds: the ns cast would overflow
  // int64 (UB) without the saturation clamp. Near-EOL sweeps on scaled
  // devices accumulate byte counts this large.
  PerfModelConfig cfg = BaseConfig();
  cfg.bus_mib_per_sec = 1.0;
  PerfModel model(cfg);
  const uint64_t huge = ~uint64_t{0};
  const SimDuration t = model.ServiceTime(huge, SimDuration::Micros(1), true);
  EXPECT_GT(t.nanos(), 0);
  // Saturated, and adding the overhead on top must not wrap negative.
  const SimDuration bigger = model.ServiceTime(huge, SimDuration::Hours(1), false);
  EXPECT_GT(bigger.nanos(), 0);
}

TEST(PerfModelTest, QueueTopologyDefaultsAreFlat) {
  // Catalog devices never opt into the event engine implicitly: the flat
  // C=1/D=1 calibration stays the default.
  PerfModelConfig cfg;
  EXPECT_EQ(cfg.channels, 1u);
  EXPECT_EQ(cfg.queue_depth, 1u);
  EXPECT_FALSE(cfg.force_event_engine);
}

TEST(IoQueueOverflowTest, GroupLargerThanQueueDepthCompletes) {
  // A submission group far exceeding the queue depth must schedule every op
  // (admission blocks, nothing is dropped) and keep the serial-sum bound.
  IoQueue q(2, 4);
  std::vector<QueuedOp> ops;
  SimDuration sum;
  for (uint64_t i = 0; i < 1000; ++i) {
    const SimDuration s = SimDuration::Micros(50 + (i * 37) % 200);
    ops.push_back(QueuedOp{i, s});
    sum += s;
  }
  std::vector<SimDuration> lat(ops.size());
  const SimDuration makespan = q.Run(ops.data(), ops.size(), lat.data());
  EXPECT_GT(makespan.nanos(), 0);
  EXPECT_LE(makespan.nanos(), sum.nanos());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_GE(lat[i].nanos(), ops[i].service.nanos());
  }
}

TEST(IoQueueOverflowTest, ZeroConfigClampsToOne) {
  IoQueue q(0, 0);
  EXPECT_EQ(q.channels(), 1u);
  EXPECT_EQ(q.depth(), 1u);
  QueuedOp op{0, SimDuration::Micros(10)};
  EXPECT_EQ(q.Run(&op, 1).nanos(), SimDuration::Micros(10).nanos());
}

TEST(BlockDeviceTest, IoKindNames) {
  EXPECT_STREQ(IoKindName(IoKind::kRead), "read");
  EXPECT_STREQ(IoKindName(IoKind::kWrite), "write");
  EXPECT_STREQ(IoKindName(IoKind::kDiscard), "discard");
}

}  // namespace
}  // namespace flashsim
