#include "src/nand/error_model.h"

#include <gtest/gtest.h>

#include "src/simcore/rng.h"

namespace flashsim {
namespace {

TEST(RberModelTest, BaseRateAtZeroWear) {
  RberModelParams params;
  params.base_rber = 1e-7;
  params.growth_rber = 4e-4;
  RberModel model(params, 3000);
  EXPECT_DOUBLE_EQ(model.RberAt(0), 1e-7);
}

TEST(RberModelTest, MonotonicallyNondecreasing) {
  RberModel model(RberModelParams{}, 3000);
  double prev = 0.0;
  for (uint32_t pe = 0; pe <= 9000; pe += 300) {
    const double rber = model.RberAt(pe);
    EXPECT_GE(rber, prev) << "pe=" << pe;
    prev = rber;
  }
}

TEST(RberModelTest, GrowthAtRatedLife) {
  RberModelParams params;
  params.base_rber = 1e-7;
  params.growth_rber = 4e-4;
  params.exponent = 3.0;
  RberModel model(params, 1000);
  // At rated life: base + growth.
  EXPECT_NEAR(model.RberAt(1000), 1e-7 + 4e-4, 1e-9);
  // At 2x rated: base + growth * 8.
  EXPECT_NEAR(model.RberAt(2000), 1e-7 + 4e-4 * 8, 1e-8);
}

TEST(RberModelTest, ClampsAtOne) {
  RberModelParams params;
  params.growth_rber = 1.0;
  params.exponent = 1.0;
  RberModel model(params, 10);
  EXPECT_DOUBLE_EQ(model.RberAt(1000), 1.0);
}

TEST(EccEngineTest, CodewordsPerPage) {
  EccConfig cfg;
  cfg.codeword_bytes = 1024;
  EccEngine ecc(cfg, 4096);
  EXPECT_EQ(ecc.codewords_per_page(), 4u);
  EccEngine ecc2(EccConfig{4096, 40}, 4096);
  EXPECT_EQ(ecc2.codewords_per_page(), 1u);
}

TEST(EccEngineTest, CleanPageAtZeroRber) {
  EccEngine ecc(EccConfig{}, 4096);
  Rng rng(1);
  const EccOutcome out = ecc.DecodePage(0.0, rng);
  EXPECT_TRUE(out.correctable);
  EXPECT_EQ(out.raw_bit_errors, 0u);
  EXPECT_EQ(out.corrected_bits, 0u);
}

TEST(EccEngineTest, LowRberAlwaysCorrectable) {
  EccEngine ecc(EccConfig{}, 4096);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(ecc.DecodePage(1e-6, rng).correctable);
  }
}

TEST(EccEngineTest, ExtremeRberUncorrectable) {
  EccEngine ecc(EccConfig{}, 4096);
  Rng rng(3);
  // 10% raw error rate across 8 Kib codewords vastly exceeds a 40-bit budget.
  EXPECT_FALSE(ecc.DecodePage(0.1, rng).correctable);
}

TEST(EccEngineTest, SaturationRberMatchesBudget) {
  EccConfig cfg;
  cfg.codeword_bytes = 1024;
  cfg.correctable_bits = 40;
  EccEngine ecc(cfg, 4096);
  EXPECT_DOUBLE_EQ(ecc.SaturationRber(), 40.0 / (1024.0 * 8.0));
}

// Property: the uncorrectable fraction rises monotonically (within noise)
// with RBER around the saturation point.
class EccFailureCurve : public ::testing::TestWithParam<double> {};

TEST_P(EccFailureCurve, FailureFractionSane) {
  EccEngine ecc(EccConfig{}, 4096);
  Rng rng(42);
  const double rber_scale = GetParam();
  const double rber = ecc.SaturationRber() * rber_scale;
  int failures = 0;
  const int kTrials = 400;
  for (int i = 0; i < kTrials; ++i) {
    failures += ecc.DecodePage(rber, rng).correctable ? 0 : 1;
  }
  const double fraction = static_cast<double>(failures) / kTrials;
  if (rber_scale <= 0.5) {
    EXPECT_LT(fraction, 0.01) << "well below saturation must be reliable";
  }
  if (rber_scale >= 1.5) {
    EXPECT_GT(fraction, 0.95) << "well above saturation must fail";
  }
}

INSTANTIATE_TEST_SUITE_P(AroundSaturation, EccFailureCurve,
                         ::testing::Values(0.25, 0.5, 1.5, 2.0));

TEST(EccEngineTest, CorrectedBitsReported) {
  EccEngine ecc(EccConfig{}, 4096);
  Rng rng(7);
  // Moderate RBER: expect some corrected bits over many reads.
  uint64_t corrected = 0;
  for (int i = 0; i < 200; ++i) {
    const EccOutcome out = ecc.DecodePage(1e-4, rng);
    if (out.correctable) {
      corrected += out.corrected_bits;
    }
  }
  EXPECT_GT(corrected, 0u);
}

}  // namespace
}  // namespace flashsim
