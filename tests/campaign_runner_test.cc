#include "src/campaign/runner.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "src/campaign/report.h"
#include "src/campaign/spec.h"
#include "src/simcore/units.h"

namespace flashsim {
namespace {

// Small but representative: both layers, both metrics, several generators,
// heavy capacity scaling so the whole campaign stays unit-test fast.
const char kTestSpec[] = R"(
campaign runner_test seed=21 scale=64x1

workload seq pattern=sequential request=64KiB total=1MiB span=25%
workload rnd pattern=random request=4KiB total=256KiB span=25%
workload zip pattern=zipf request=4KiB total=256KiB span=25%

grid bw layer=block metric=bandwidth devices=emmc8,samsung_s6 workloads=seq,rnd,zip
grid ph layer=phone metric=bandwidth devices=moto_e8 fs=ext4 workloads=rnd utilization=0.2 files=2x16MiB
grid wr layer=block metric=wear scale=64x64 devices=emmc8 workloads=rnd target_level=2
)";

CampaignSpec ParseTestSpec() {
  const Result<CampaignSpec> parsed = ParseCampaignSpec(kTestSpec);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.value();
}

CampaignOutcome RunWithThreads(int threads) {
  CampaignRunOptions options;
  options.threads = threads;
  return RunCampaign(ParseTestSpec(), options);
}

std::string JsonOf(const CampaignOutcome& outcome) {
  std::ostringstream os;
  WriteCampaignJson(os, outcome);
  return os.str();
}

std::string CsvOf(const CampaignOutcome& outcome) {
  std::ostringstream os;
  WriteCampaignCsv(os, outcome);
  return os.str();
}

// The determinism contract: reports are byte-identical for any thread count.
TEST(CampaignRunnerTest, ReportsAreThreadCountInvariant) {
  const CampaignOutcome serial = RunWithThreads(1);
  const CampaignOutcome parallel = RunWithThreads(8);

  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  EXPECT_EQ(JsonOf(serial), JsonOf(parallel));
  EXPECT_EQ(CsvOf(serial), CsvOf(parallel));
}

TEST(CampaignRunnerTest, AllRunsSucceedAndArriveInIndexOrder) {
  const CampaignOutcome outcome = RunWithThreads(4);
  ASSERT_EQ(outcome.runs.size(), 8u);
  for (size_t i = 0; i < outcome.runs.size(); ++i) {
    const RunRecord& run = outcome.runs[i];
    EXPECT_EQ(run.index, i);
    EXPECT_TRUE(run.status.ok()) << run.grid << "/" << run.device << ": "
                                 << run.status.ToString();
    EXPECT_GT(run.requests, 0u) << i;
    EXPECT_GT(run.bytes_written, 0u) << i;
    EXPECT_GT(run.write_mib_per_sec, 0.0) << i;
  }
}

TEST(CampaignRunnerTest, RunsConsumeIndependentSeeds) {
  const CampaignOutcome outcome = RunWithThreads(2);
  std::set<uint64_t> seeds;
  for (const RunRecord& run : outcome.runs) {
    seeds.insert(run.seed);
  }
  EXPECT_EQ(seeds.size(), outcome.runs.size());
}

TEST(CampaignRunnerTest, BandwidthRunWritesTheWorkloadTotal) {
  const std::vector<RunSpec> runs = ExpandRuns(ParseTestSpec());
  ASSERT_FALSE(runs.empty());
  const RunRecord record = ExecuteRun(runs[0]);  // bw/emmc8/seq
  ASSERT_TRUE(record.status.ok()) << record.status.ToString();
  EXPECT_EQ(record.bytes_written, 1 * kMiB);
  EXPECT_EQ(record.fs, "-");
  EXPECT_DOUBLE_EQ(record.fs_wa, 1.0);
  EXPECT_GE(record.device_wa, 1.0);
}

TEST(CampaignRunnerTest, WearRunStopsAtTargetLevelWithTransitions) {
  const std::vector<RunSpec> runs = ExpandRuns(ParseTestSpec());
  const RunRecord record = ExecuteRun(runs.back());  // wr grid
  ASSERT_TRUE(record.status.ok()) << record.status.ToString();
  EXPECT_TRUE(record.reached_target);
  EXPECT_GE(std::max(record.level_a, record.level_b), 2u);
  ASSERT_FALSE(record.levels.empty());
  // Transitions are monotone in bytes and time.
  for (size_t i = 1; i < record.levels.size(); ++i) {
    EXPECT_GT(record.levels[i].level, record.levels[i - 1].level);
    EXPECT_GE(record.levels[i].host_bytes, record.levels[i - 1].host_bytes);
    EXPECT_GE(record.levels[i].hours, record.levels[i - 1].hours);
  }
}

TEST(CampaignRunnerTest, PhoneRunReportsFsAmplification) {
  const std::vector<RunSpec> runs = ExpandRuns(ParseTestSpec());
  const RunSpec* phone_run = nullptr;
  for (const RunSpec& run : runs) {
    if (run.layer == RunLayer::kPhone) {
      phone_run = &run;
    }
  }
  ASSERT_NE(phone_run, nullptr);
  const RunRecord record = ExecuteRun(*phone_run);
  ASSERT_TRUE(record.status.ok()) << record.status.ToString();
  EXPECT_EQ(record.fs, "Ext4");
  EXPECT_GE(record.fs_wa, 1.0);
}

TEST(CampaignRunnerTest, JsonExcludesWallClock) {
  CampaignOutcome outcome = RunWithThreads(1);
  outcome.wall_seconds = 123.456;
  std::string json = JsonOf(outcome);
  EXPECT_EQ(json.find("wall"), std::string::npos);
  EXPECT_EQ(json.find("123.456"), std::string::npos);
}

TEST(CampaignRunnerTest, ExecuteRunRejectsUnknownDevice) {
  RunSpec run;
  run.device = "floppy";
  const RunRecord record = ExecuteRun(run);
  EXPECT_FALSE(record.status.ok());
}

// The streaming path must deliver records in index order even when many
// workers finish out of order, and the streamed reports must be
// byte-identical to the batch writers replaying the collected outcome.
TEST(CampaignStreamingTest, SinkReceivesRecordsInIndexOrder) {
  CampaignRunOptions options;
  options.threads = 8;
  std::vector<size_t> order;
  const CampaignStreamResult result = RunCampaignStreaming(
      ParseTestSpec(), options,
      [&order](RunRecord&& record) { order.push_back(record.index); });
  EXPECT_EQ(result.run_count, 8u);
  EXPECT_EQ(result.hard_failures, 0u);
  ASSERT_EQ(order.size(), 8u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(CampaignStreamingTest, StreamedReportsMatchBatchWritersByteForByte) {
  const CampaignOutcome batch = RunWithThreads(1);

  std::ostringstream json_os;
  std::ostringstream csv_os;
  CampaignJsonStream json_stream(json_os);
  CampaignCsvStream csv_stream(csv_os);
  const CampaignSpec spec = ParseTestSpec();
  json_stream.Begin(spec.name, spec.seed);
  csv_stream.Begin();
  CampaignRunOptions options;
  options.threads = 4;
  RunCampaignStreaming(spec, options, [&](RunRecord&& record) {
    json_stream.AddRun(record);
    csv_stream.AddRun(record);
  });
  json_stream.Finish();

  EXPECT_EQ(json_os.str(), JsonOf(batch));
  EXPECT_EQ(csv_os.str(), CsvOf(batch));
}

TEST(CampaignStreamingTest, CountsHardFailures) {
  // An unknown device cannot be expressed through the spec parser (it
  // validates slugs), so exercise the counter via ExecuteRun parity: a
  // bricked run is not a hard failure, a failed one is.
  RunRecord bricked;
  bricked.status = UnavailableError("worn out");
  bricked.bricked = true;
  RunRecord failed;
  failed.status = InternalError("boom");
  // Mirror of the runner's classification.
  EXPECT_FALSE(!bricked.status.ok() && !bricked.bricked);
  EXPECT_TRUE(!failed.status.ok() && !failed.bricked);
}

}  // namespace
}  // namespace flashsim
