#include "src/device/catalog.h"

#include <gtest/gtest.h>

#include "src/simcore/units.h"
#include "src/wearlab/bandwidth_probe.h"

namespace flashsim {
namespace {

TEST(CatalogTest, SevenDevicesInOrder) {
  const auto& catalog = DeviceCatalog();
  ASSERT_EQ(catalog.size(), 7u);
  EXPECT_EQ(catalog[0].name, "uSD 16GB");
  EXPECT_EQ(catalog[1].name, "eMMC 8GB");
  EXPECT_EQ(catalog[2].name, "eMMC 16GB");
  EXPECT_EQ(catalog[3].name, "Moto E 8GB");
  EXPECT_EQ(catalog[4].name, "Samsung S6 32GB");
  EXPECT_EQ(catalog[5].name, "BLU 512MB");
  EXPECT_EQ(catalog[6].name, "BLU 4GB");
}

TEST(CatalogTest, Figure1DevicesAreTheFive) {
  ASSERT_EQ(Figure1Devices().size(), 5u);
}

// Every catalog device must construct and accept basic I/O at several scales.
struct ScaleCase {
  uint32_t cap_div;
  uint32_t end_div;
};

class CatalogAtScale : public ::testing::TestWithParam<ScaleCase> {};

TEST_P(CatalogAtScale, AllDevicesConstructAndWrite) {
  const SimScale scale{GetParam().cap_div, GetParam().end_div};
  for (const CatalogEntry& entry : DeviceCatalog()) {
    auto device = entry.make(scale, /*seed=*/1);
    ASSERT_NE(device, nullptr) << entry.name;
    EXPECT_GT(device->CapacityBytes(), 0u) << entry.name;
    EXPECT_TRUE(device->Submit({IoKind::kWrite, 0, 4096}).ok()) << entry.name;
    EXPECT_TRUE(device->Submit({IoKind::kRead, 0, 4096}).ok()) << entry.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, CatalogAtScale,
                         ::testing::Values(ScaleCase{16, 1}, ScaleCase{32, 16},
                                           ScaleCase{64, 32}));

TEST(CatalogTest, CapacityOrderingAtFullScaleGeometry) {
  // At scale 16, relative capacities still reflect the real devices.
  const SimScale s{16, 1};
  auto usd = MakeUsd16(s);
  auto emmc8 = MakeEmmc8(s);
  auto emmc16 = MakeEmmc16(s);
  auto s6 = MakeSamsungS6(s);
  auto blu512 = MakeBlu512(s);
  EXPECT_GT(usd->CapacityBytes(), emmc8->CapacityBytes());
  EXPECT_GT(emmc16->CapacityBytes(), emmc8->CapacityBytes());
  EXPECT_GT(s6->CapacityBytes(), emmc16->CapacityBytes());
  EXPECT_LT(blu512->CapacityBytes(), emmc8->CapacityBytes());
}

TEST(CatalogTest, HealthSupportMatchesPaper) {
  const SimScale s{64, 32};
  EXPECT_FALSE(MakeUsd16(s)->QueryHealth().supported);
  EXPECT_TRUE(MakeEmmc8(s)->QueryHealth().supported);
  EXPECT_TRUE(MakeEmmc16(s)->QueryHealth().supported);
  EXPECT_TRUE(MakeMotoE8(s)->QueryHealth().supported);
  EXPECT_TRUE(MakeSamsungS6(s)->QueryHealth().supported);
  EXPECT_FALSE(MakeBlu512(s)->QueryHealth().supported);
  EXPECT_FALSE(MakeBlu4(s)->QueryHealth().supported);
}

TEST(CatalogTest, Emmc16ReportsBothWearTypes) {
  auto device = MakeEmmc16(SimScale{64, 32});
  // Force the health path through some writes.
  ASSERT_TRUE(device->Submit({IoKind::kWrite, 0, 64 * 1024}).ok());
  const HealthReport h = device->ftl().Health();
  EXPECT_GE(h.life_time_est_a, 1u);
  EXPECT_GE(h.life_time_est_b, 1u);
  EXPECT_GT(h.rated_pe_a, h.rated_pe_b) << "Type A is the high-endurance region";
}

TEST(CatalogTest, SimScaleVolumeFactor) {
  EXPECT_DOUBLE_EQ((SimScale{1, 1}).VolumeFactor(), 1.0);
  EXPECT_DOUBLE_EQ((SimScale{32, 16}).VolumeFactor(), 512.0);
}

// Figure 1 shape assertions (fast, small probes).
TEST(CatalogShapeTest, EmmcBeatsUsdAtRandom4K) {
  const SimScale s{64, 1};
  auto usd = MakeUsd16(s, 1);
  auto emmc = MakeEmmc8(s, 1);
  BandwidthProbeConfig probe;
  probe.pattern = AccessPattern::kRandom;
  probe.request_bytes = 4096;
  probe.total_bytes = 4 * kMiB;
  probe.region_bytes = 32 * kMiB;
  const double usd_bw = RunBandwidthProbe(*usd, probe).mib_per_sec;
  const double emmc_bw = RunBandwidthProbe(*emmc, probe).mib_per_sec;
  EXPECT_GT(emmc_bw, 5.0 * usd_bw);
}

TEST(CatalogShapeTest, EmmcRandomCloseToSequential) {
  const SimScale s{64, 1};
  BandwidthProbeConfig probe;
  probe.request_bytes = 64 * 1024;
  probe.total_bytes = 8 * kMiB;
  probe.region_bytes = 32 * kMiB;
  auto seq_dev = MakeEmmc8(s, 1);
  probe.pattern = AccessPattern::kSequential;
  const double seq = RunBandwidthProbe(*seq_dev, probe).mib_per_sec;
  auto rand_dev = MakeEmmc8(s, 1);
  probe.pattern = AccessPattern::kRandom;
  const double rand = RunBandwidthProbe(*rand_dev, probe).mib_per_sec;
  EXPECT_NEAR(rand / seq, 1.0, 0.1);
}

TEST(CatalogShapeTest, UsdRandomFarBelowSequential) {
  const SimScale s{64, 1};
  BandwidthProbeConfig probe;
  probe.request_bytes = 4096;
  probe.total_bytes = 2 * kMiB;
  probe.region_bytes = 32 * kMiB;
  auto seq_dev = MakeUsd16(s, 1);
  probe.pattern = AccessPattern::kSequential;
  const double seq = RunBandwidthProbe(*seq_dev, probe).mib_per_sec;
  auto rand_dev = MakeUsd16(s, 1);
  probe.pattern = AccessPattern::kRandom;
  const double rand = RunBandwidthProbe(*rand_dev, probe).mib_per_sec;
  EXPECT_LT(rand, seq / 3.0);
}

TEST(CatalogShapeTest, BandwidthGrowsThenPlateaus) {
  const SimScale s{64, 1};
  BandwidthProbeConfig probe;
  probe.pattern = AccessPattern::kSequential;
  probe.region_bytes = 32 * kMiB;
  double bw_4k = 0;
  double bw_1m = 0;
  double bw_4m = 0;
  for (auto [size, out] : {std::pair<uint64_t, double*>{4096, &bw_4k},
                           {1 * kMiB, &bw_1m},
                           {4 * kMiB, &bw_4m}}) {
    auto device = MakeSamsungS6(s, 1);
    probe.request_bytes = size;
    probe.total_bytes = std::max<uint64_t>(8 * kMiB, 2 * size);
    *out = RunBandwidthProbe(*device, probe).mib_per_sec;
  }
  EXPECT_GT(bw_1m, 2.0 * bw_4k);           // growth region
  EXPECT_NEAR(bw_4m / bw_1m, 1.0, 0.15);   // plateau
}

}  // namespace
}  // namespace flashsim
