#include <gtest/gtest.h>

#include "src/nand/chip.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

// Standalone block for unit tests: Init()s `planes` for one block and views
// it at base 0.
NandBlock MakeTestBlock(PageMetaPlanes& planes, uint32_t pages_per_block) {
  planes.Init(pages_per_block);
  return NandBlock(planes, 0, pages_per_block);
}

TEST(HealingTest, HealRecoversFractionOfWear) {
  PageMetaPlanes planes;
  NandBlock blk = MakeTestBlock(planes, 8);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(blk.Erase().ok());
  }
  EXPECT_EQ(blk.pe_cycles(), 100u);
  blk.Heal(0.3);
  EXPECT_EQ(blk.pe_cycles(), 70u);
  blk.Heal(1.0);
  EXPECT_EQ(blk.pe_cycles(), 0u);
}

TEST(HealingTest, HealClampsFraction) {
  PageMetaPlanes planes;
  NandBlock blk = MakeTestBlock(planes, 8);
  ASSERT_TRUE(blk.Erase(10).ok());
  blk.Heal(5.0);  // clamped to 1.0
  EXPECT_EQ(blk.pe_cycles(), 0u);
  ASSERT_TRUE(blk.Erase(10).ok());
  blk.Heal(-1.0);  // no-op
  EXPECT_EQ(blk.pe_cycles(), 10u);
  blk.Heal(0.0);  // no-op
  EXPECT_EQ(blk.pe_cycles(), 10u);
}

TEST(HealingTest, BadBlocksStayBad) {
  PageMetaPlanes planes;
  NandBlock blk = MakeTestBlock(planes, 8);
  ASSERT_TRUE(blk.Erase(50).ok());
  blk.MarkBad();
  blk.Heal(1.0);
  EXPECT_TRUE(blk.is_bad());
  EXPECT_EQ(blk.pe_cycles(), 50u) << "annealing does not revive dead blocks";
}

TEST(HealingTest, AnnealAllLowersAverageWear) {
  NandChip chip(TinyChipConfig(), 1);
  for (BlockId b = 0; b < 8; ++b) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(chip.EraseBlock(b).ok());
    }
  }
  const double before = chip.ComputeWearSummary().avg_pe;
  const SimDuration cost = chip.AnnealAll(0.5, SimDuration::Millis(2));
  const double after = chip.ComputeWearSummary().avg_pe;
  EXPECT_NEAR(after, before / 2.0, 0.5);
  // 32 good blocks at 2 ms each.
  EXPECT_EQ(cost.nanos(), SimDuration::Millis(64).nanos());
  EXPECT_EQ(chip.counters().Get("nand.anneals"), 1u);
}

TEST(HealingTest, AnnealLowersRber) {
  NandChip chip(TinyChipConfig(), 1);
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(chip.EraseBlock(0).ok());
  }
  const double worn = chip.BlockRber(0);
  (void)chip.AnnealAll(0.8, SimDuration::Millis(1));
  EXPECT_LT(chip.BlockRber(0), worn);
}

TEST(HealingTest, AnnealedFtlEndsUpYounger) {
  // Deterministic comparison: identical write volume, one FTL annealed
  // midway; its final average wear (and health level) must be lower.
  auto run = [](bool heal) {
    auto ftl = MakeTinyFtl(3);
    const uint64_t total_writes = 600000;
    for (uint64_t i = 0; i < total_writes; ++i) {
      EXPECT_TRUE(ftl->WritePage(i % 256).ok());
      if (heal && i == total_writes / 2) {
        ftl->mutable_chip().AnnealAll(0.5, SimDuration::Millis(1));
      }
    }
    return ftl->chip().ComputeWearSummary().avg_pe;
  };
  const double baseline_pe = run(false);
  const double healed_pe = run(true);
  EXPECT_LT(healed_pe, baseline_pe * 0.85);
  EXPECT_GT(healed_pe, baseline_pe * 0.4) << "only half the wear existed to heal";
}

}  // namespace
}  // namespace flashsim
