// Interface-contract tests run against every file system via TEST_P: any
// Filesystem implementation registered in tests/fs_param.h must satisfy
// these.

#include <gtest/gtest.h>

#include <memory>

#include "tests/fs_param.h"

namespace flashsim {
namespace {

class FsContract : public ::testing::TestWithParam<FsCase> {
 protected:
  void SetUp() override { fixture_ = GetParam().factory(); }
  Filesystem& fs() { return *fixture_.fs; }
  FsFixture fixture_;
};

TEST_P(FsContract, CreateAndExists) {
  EXPECT_FALSE(fs().Exists("a.txt"));
  ASSERT_TRUE(fs().Create("a.txt").ok());
  EXPECT_TRUE(fs().Exists("a.txt"));
  EXPECT_EQ(fs().Create("a.txt").code(), StatusCode::kAlreadyExists);
}

TEST_P(FsContract, WriteExtendsFile) {
  ASSERT_TRUE(fs().Create("f").ok());
  ASSERT_TRUE(fs().Write("f", 0, 10000, false).ok());
  Result<uint64_t> size = fs().FileSize("f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 10000u);
  // Writing inside the file does not shrink it.
  ASSERT_TRUE(fs().Write("f", 100, 200, false).ok());
  EXPECT_EQ(fs().FileSize("f").value(), 10000u);
  // Writing past the end extends it.
  ASSERT_TRUE(fs().Write("f", 20000, 100, false).ok());
  EXPECT_EQ(fs().FileSize("f").value(), 20100u);
}

TEST_P(FsContract, WriteToMissingFileFails) {
  EXPECT_EQ(fs().Write("nope", 0, 10, false).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fs().Read("nope", 0, 10).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fs().Fsync("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fs().Unlink("nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(fs().FileSize("nope").status().code(), StatusCode::kNotFound);
}

TEST_P(FsContract, ZeroLengthWriteRejected) {
  ASSERT_TRUE(fs().Create("f").ok());
  EXPECT_EQ(fs().Write("f", 0, 0, false).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_P(FsContract, ReadWithinBounds) {
  ASSERT_TRUE(fs().Create("f").ok());
  ASSERT_TRUE(fs().Write("f", 0, 64 * 1024, false).ok());
  EXPECT_TRUE(fs().Read("f", 0, 64 * 1024).ok());
  EXPECT_TRUE(fs().Read("f", 1000, 5000).ok());
  EXPECT_EQ(fs().Read("f", 0, 64 * 1024 + 1).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(fs().Read("f", 64 * 1024, 1).status().code(), StatusCode::kOutOfRange);
}

TEST_P(FsContract, UnlinkRemovesAndFreesSpace) {
  ASSERT_TRUE(fs().Create("f").ok());
  const uint64_t before = fs().FreeBytes();
  ASSERT_TRUE(fs().Write("f", 0, 1024 * 1024, false).ok());
  EXPECT_LT(fs().FreeBytes(), before);
  ASSERT_TRUE(fs().Unlink("f").ok());
  EXPECT_FALSE(fs().Exists("f"));
  // Space comes back, modulo log-structured lag: invalidated blocks are
  // reclaimed by the cleaner segment-by-segment, so allow a segment or two.
  EXPECT_GE(fs().FreeBytes() + 4 * 1024 * 1024, before);
}

TEST_P(FsContract, ListReturnsAllFiles) {
  ASSERT_TRUE(fs().Create("a").ok());
  ASSERT_TRUE(fs().Create("b").ok());
  ASSERT_TRUE(fs().Create("c").ok());
  EXPECT_EQ(fs().List().size(), 3u);
}

TEST_P(FsContract, FsyncSucceedsAndCounts) {
  ASSERT_TRUE(fs().Create("f").ok());
  ASSERT_TRUE(fs().Write("f", 0, 4096, false).ok());
  ASSERT_TRUE(fs().Fsync("f").ok());
  EXPECT_GE(fs().stats().fsyncs, 1u);
}

TEST_P(FsContract, AppBytesAccounted) {
  ASSERT_TRUE(fs().Create("f").ok());
  ASSERT_TRUE(fs().Write("f", 0, 123456, false).ok());
  EXPECT_EQ(fs().stats().app_bytes_written, 123456u);
}

TEST_P(FsContract, DeviceSeesWrites) {
  ASSERT_TRUE(fs().Create("f").ok());
  ASSERT_TRUE(fs().Write("f", 0, 1024 * 1024, true).ok());
  EXPECT_GE(fixture_.device->HostBytesWritten(), 1024u * 1024);
}

TEST_P(FsContract, WriteAmplificationAtLeastOne) {
  ASSERT_TRUE(fs().Create("f").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(fs().Write("f", static_cast<uint64_t>(i) * 4096, 4096, true).ok());
  }
  ASSERT_TRUE(fs().Fsync("f").ok());
  EXPECT_GE(fs().stats().FsWriteAmplification(), 1.0);
}

TEST_P(FsContract, ManyFilesRoundtrip) {
  for (int i = 0; i < 50; ++i) {
    const std::string name = "file" + std::to_string(i);
    ASSERT_TRUE(fs().Create(name).ok());
    ASSERT_TRUE(fs().Write(name, 0, 4096 * (1 + i % 7), false).ok());
  }
  EXPECT_EQ(fs().List().size(), 50u);
  for (int i = 0; i < 50; i += 2) {
    ASSERT_TRUE(fs().Unlink("file" + std::to_string(i)).ok());
  }
  EXPECT_EQ(fs().List().size(), 25u);
  for (int i = 1; i < 50; i += 2) {
    EXPECT_TRUE(fs().Read("file" + std::to_string(i), 0, 4096).ok());
  }
}

TEST_P(FsContract, OutOfSpaceSurfacesCleanly) {
  ASSERT_TRUE(fs().Create("big").ok());
  const uint64_t free = fs().FreeBytes();
  // Try to write more than fits; must fail with RESOURCE_EXHAUSTED, not crash.
  Status st = Status::Ok();
  uint64_t off = 0;
  while (st.ok() && off < free * 2) {
    st = fs().Write("big", off, 4 * 1024 * 1024, false).status();
    off += 4 * 1024 * 1024;
  }
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

INSTANTIATE_TEST_SUITE_P(AllFilesystems, FsContract,
                         ::testing::ValuesIn(AllFsCases()), FsCaseName);

}  // namespace
}  // namespace flashsim
