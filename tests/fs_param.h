// Shared value-parameterized fixture for the Filesystem contract suites.
//
// Every generic FS test instantiates over AllFsCases(): a new implementation
// added here inherits the whole shared contract suite (fs_common_test,
// fs_truncate_rename_test) for free. The per-case flags describe where each
// file system's durability barriers sit, so crash-atomicity tests can assert
// contract-specific outcomes without naming implementations.

#ifndef TESTS_FS_PARAM_H_
#define TESTS_FS_PARAM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/fs/cowfs.h"
#include "src/fs/extfs.h"
#include "src/fs/logfs.h"
#include "tests/test_util.h"

namespace flashsim {

struct FsFixture {
  std::unique_ptr<FlashDevice> device;
  std::unique_ptr<Filesystem> fs;
};

struct FsCase {
  const char* name;
  std::function<FsFixture()> factory;
  // Unlink/Rename act on the durable namespace the moment they return
  // (LogFs dentry model, CowFs commit) — a post-crash mount shows the new
  // name even if no later barrier ran.
  bool dentry_durable_immediately = false;
  // Create/Unlink/Truncate/Rename each carry their own device-level commit
  // (CowFs metadata pairs): the op itself is the barrier, can observe a
  // power cut, and needs no following Fsync to become durable.
  bool namespace_ops_commit = false;
};

inline std::vector<FsCase> AllFsCases() {
  return {
      FsCase{"ExtFs",
             [] {
               FsFixture f;
               f.device = MakeDurableDevice();
               f.fs = std::make_unique<ExtFs>(*f.device);
               return f;
             },
             /*dentry_durable_immediately=*/false,
             /*namespace_ops_commit=*/false},
      FsCase{"LogFs",
             [] {
               FsFixture f;
               f.device = MakeDurableDevice();
               f.fs = std::make_unique<LogFs>(*f.device);
               return f;
             },
             /*dentry_durable_immediately=*/true,
             /*namespace_ops_commit=*/false},
      FsCase{"CowFs",
             [] {
               FsFixture f;
               f.device = MakeDurableDevice();
               f.fs = std::make_unique<CowFs>(*f.device);
               return f;
             },
             /*dentry_durable_immediately=*/true,
             /*namespace_ops_commit=*/true},
  };
}

inline std::string FsCaseName(const ::testing::TestParamInfo<FsCase>& info) {
  return info.param.name;
}

}  // namespace flashsim

#endif  // TESTS_FS_PARAM_H_
