#include "src/nand/chip.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace flashsim {
namespace {

NandChipConfig ChipConfig() { return TinyChipConfig(); }

TEST(NandChipTest, GeometryAndAddressing) {
  NandChip chip(ChipConfig(), 1);
  EXPECT_EQ(chip.config().total_blocks(), 32u);
  // Blocks stripe across dies round-robin.
  EXPECT_EQ(chip.DieOfBlock(0), 0u);
  EXPECT_EQ(chip.DieOfBlock(1), 1u);
  EXPECT_EQ(chip.DieOfBlock(2), 0u);
  EXPECT_EQ(chip.ChannelOfBlock(0), 0u);
}

TEST(NandChipTest, ProgramReadRoundtrip) {
  NandChip chip(ChipConfig(), 1);
  ASSERT_TRUE(chip.ProgramPage({0, 0}, 777).ok());
  Result<NandReadOutcome> read = chip.ReadPage({0, 0});
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().tag, 777u);
  EXPECT_EQ(read.value().latency, chip.config().timings.read_page);
}

TEST(NandChipTest, ProgramReturnsTiming) {
  NandChip chip(ChipConfig(), 1);
  Result<SimDuration> t = chip.ProgramPage({0, 0}, 1);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value(), chip.config().timings.program_page);
}

TEST(NandChipTest, EraseReturnsTimingAndChargesCycle) {
  NandChip chip(ChipConfig(), 1);
  ASSERT_TRUE(chip.ProgramPage({3, 0}, 1).ok());
  Result<SimDuration> t = chip.EraseBlock(3);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value(), chip.config().timings.erase_block);
  EXPECT_EQ(chip.block(3).pe_cycles(), 1u);
}

TEST(NandChipTest, EraseWearWeight) {
  NandChip chip(ChipConfig(), 1);
  ASSERT_TRUE(chip.EraseBlock(0, 7).ok());
  EXPECT_EQ(chip.block(0).pe_cycles(), 7u);
}

TEST(NandChipTest, OutOfRangeAddresses) {
  NandChip chip(ChipConfig(), 1);
  EXPECT_EQ(chip.ProgramPage({999, 0}, 1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(chip.ProgramPage({0, 999}, 1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(chip.EraseBlock(999).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(chip.ReadPage({999, 0}).status().code(), StatusCode::kOutOfRange);
}

TEST(NandChipTest, ReadOfUnprogrammedPageFails) {
  NandChip chip(ChipConfig(), 1);
  EXPECT_EQ(chip.ReadPage({0, 0}).status().code(), StatusCode::kFailedPrecondition);
}

TEST(NandChipTest, InOrderRuleEnforced) {
  NandChip chip(ChipConfig(), 1);
  EXPECT_EQ(chip.ProgramPage({0, 1}, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(NandChipTest, NoFailuresBelowOnset) {
  NandChipConfig cfg = ChipConfig();
  cfg.rated_pe_cycles = 50;
  NandChip chip(cfg, 123);
  // Cycle a block up to (but not past) rated life: no failures allowed.
  for (uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(chip.ProgramPage({5, 0}, i).ok()) << "cycle " << i;
    ASSERT_TRUE(chip.EraseBlock(5).ok()) << "cycle " << i;
  }
  EXPECT_FALSE(chip.block(5).is_bad());
  EXPECT_EQ(chip.counters().Get("nand.erase_failures"), 0u);
}

TEST(NandChipTest, WearEventuallyKillsBlock) {
  NandChipConfig cfg = ChipConfig();
  cfg.rated_pe_cycles = 20;
  cfg.failure_ceiling = 0.2;
  NandChip chip(cfg, 99);
  // Push a block far past rated life; it must eventually fail.
  bool died = false;
  for (uint32_t i = 0; i < 2000 && !died; ++i) {
    if (!chip.block(7).is_bad()) {
      Status program = chip.ProgramPage({7, 0}, i).status();
      died = !program.ok() && chip.block(7).is_bad();
      if (!died) {
        Status erase = chip.EraseBlock(7).status();
        died = !erase.ok();
      }
    }
  }
  EXPECT_TRUE(died);
  EXPECT_TRUE(chip.block(7).is_bad());
}

TEST(NandChipTest, RberGrowsWithWear) {
  NandChip chip(ChipConfig(), 1);
  const double fresh = chip.BlockRber(0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(chip.EraseBlock(1).ok());
  }
  EXPECT_GT(chip.BlockRber(1), fresh);
}

TEST(NandChipTest, ReadDisturbInflatesRber) {
  NandChip chip(ChipConfig(), 1);
  ASSERT_TRUE(chip.ProgramPage({2, 0}, 1).ok());
  const double before = chip.BlockRber(2);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(chip.ReadPage({2, 0}).ok());
  }
  const double disturbed = chip.BlockRber(2);
  EXPECT_GT(disturbed, before);
  // Erase resets the disturb counter (one extra P/E cycle notwithstanding,
  // the disturb inflation must be gone).
  ASSERT_TRUE(chip.EraseBlock(2).ok());
  EXPECT_LT(chip.BlockRber(2), disturbed);
}

TEST(NandChipTest, WornPagesBecomeUncorrectable) {
  NandChipConfig cfg = ChipConfig();
  cfg.rated_pe_cycles = 10;
  cfg.failure_onset = 100.0;  // disable program/erase failures
  cfg.rber.growth_rber = 0.05;
  cfg.rber.exponent = 2.0;
  NandChip chip(cfg, 11);
  // Wear block 0 to 10x rated: RBER = 0.05 * 100 = clamped huge.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(chip.EraseBlock(0).ok());
  }
  ASSERT_TRUE(chip.ProgramPage({0, 0}, 1).ok());
  EXPECT_EQ(chip.ReadPage({0, 0}).status().code(), StatusCode::kDataLoss);
  EXPECT_GT(chip.counters().Get("nand.uncorrectable_reads"), 0u);
}

TEST(NandChipTest, WearSummaryAggregates) {
  NandChip chip(ChipConfig(), 1);
  ASSERT_TRUE(chip.EraseBlock(0).ok());
  ASSERT_TRUE(chip.EraseBlock(0).ok());
  ASSERT_TRUE(chip.EraseBlock(1).ok());
  const WearSummary s = chip.ComputeWearSummary();
  EXPECT_EQ(s.total_blocks, 32u);
  EXPECT_EQ(s.min_pe, 0u);
  EXPECT_EQ(s.max_pe, 2u);
  EXPECT_EQ(s.total_pe, 3u);
  EXPECT_NEAR(s.avg_pe, 3.0 / 32.0, 1e-9);
  EXPECT_EQ(s.bad_blocks, 0u);
}

TEST(NandChipTest, CountersTrackOperations) {
  NandChip chip(ChipConfig(), 1);
  ASSERT_TRUE(chip.ProgramPage({0, 0}, 1).ok());
  ASSERT_TRUE(chip.ReadPage({0, 0}).ok());
  ASSERT_TRUE(chip.EraseBlock(0).ok());
  EXPECT_EQ(chip.counters().Get("nand.programs"), 1u);
  EXPECT_EQ(chip.counters().Get("nand.reads"), 1u);
  EXPECT_EQ(chip.counters().Get("nand.erases"), 1u);
}

TEST(NandChipTest, DeterministicAcrossSeeds) {
  NandChip a(ChipConfig(), 55);
  NandChip b(ChipConfig(), 55);
  for (uint32_t i = 0; i < 64; ++i) {
    const Status sa = a.ProgramPage({0, i % 128}, i).status();
    const Status sb = b.ProgramPage({0, i % 128}, i).status();
    EXPECT_EQ(sa.code(), sb.code());
  }
}

TEST(AddressTest, LinearizeRoundtrip) {
  const PhysPageAddr addr{17, 93};
  const uint64_t ppn = LinearizePageAddr(addr, 128);
  EXPECT_EQ(DelinearizePageAddr(ppn, 128), addr);
  EXPECT_FALSE(kInvalidPageAddr.IsValid());
  EXPECT_TRUE(addr.IsValid());
}

}  // namespace
}  // namespace flashsim
