#include "src/ftl/block_map_ftl.h"

#include <gtest/gtest.h>

#include "src/simcore/rng.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

BlockMapFtlConfig TinyBlockMapConfig() {
  BlockMapFtlConfig cfg;
  cfg.log_blocks = 4;
  cfg.spare_blocks = 4;
  cfg.health_rated_pe = 100;
  return cfg;
}

std::unique_ptr<BlockMapFtl> MakeBlockMap(uint64_t seed = 1) {
  NandChipConfig nand = TinyChipConfig();
  nand.rated_pe_cycles = 100000;  // endurance out of scope for most tests
  return std::make_unique<BlockMapFtl>(nand, TinyBlockMapConfig(), seed);
}

TEST(BlockMapFtlTest, ConfigValidation) {
  BlockMapFtlConfig bad = TinyBlockMapConfig();
  bad.log_blocks = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = TinyBlockMapConfig();
  bad.health_rated_pe = 0;
  EXPECT_FALSE(bad.Validate().ok());
  EXPECT_TRUE(TinyBlockMapConfig().Validate().ok());
}

TEST(BlockMapFtlTest, LogicalCapacityReservesLogsAndSpares) {
  auto ftl = MakeBlockMap();
  // 32 total - 4 spares - 4 logs - 2 = 22 logical blocks.
  EXPECT_EQ(ftl->LogicalPageCount(), 22u * 128);
}

TEST(BlockMapFtlTest, WriteReadRoundtrip) {
  auto ftl = MakeBlockMap();
  ASSERT_TRUE(ftl->WritePage(5).ok());
  EXPECT_TRUE(ftl->ReadPage(5).ok());
  EXPECT_EQ(ftl->ReadPage(6).status().code(), StatusCode::kNotFound);
}

TEST(BlockMapFtlTest, OutOfRangeRejected) {
  auto ftl = MakeBlockMap();
  const uint64_t beyond = ftl->LogicalPageCount();
  EXPECT_EQ(ftl->WritePage(beyond).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ftl->ReadPage(beyond).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ftl->TrimPage(beyond).code(), StatusCode::kOutOfRange);
}

TEST(BlockMapFtlTest, SequentialFillUsesSwitchMerges) {
  auto ftl = MakeBlockMap();
  // Write four full logical blocks strictly in order.
  for (uint64_t lpn = 0; lpn < 4u * 128; ++lpn) {
    ASSERT_TRUE(ftl->WritePage(lpn).ok());
  }
  EXPECT_EQ(ftl->switch_merges(), 4u);
  EXPECT_EQ(ftl->full_merges(), 0u);
  // WA is exactly 1: every NAND program was a host page.
  EXPECT_DOUBLE_EQ(ftl->Stats().WriteAmplification(), 1.0);
}

TEST(BlockMapFtlTest, RandomWritesForceFullMerges) {
  auto ftl = MakeBlockMap(7);
  Rng rng(3);
  const uint64_t logical = ftl->LogicalPageCount();
  // Populate, then rewrite randomly: log pool thrashes, full merges follow.
  for (uint64_t lpn = 0; lpn < logical; ++lpn) {
    ASSERT_TRUE(ftl->WritePage(lpn).ok());
  }
  const uint64_t merges_before = ftl->full_merges();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(ftl->WritePage(rng.UniformU64(logical)).ok());
  }
  EXPECT_GT(ftl->full_merges(), merges_before + 50);
  EXPECT_GT(ftl->Stats().WriteAmplification(), 3.0)
      << "random writes on a block-mapped FTL amplify heavily";
}

TEST(BlockMapFtlTest, RandomSlowerThanSequential) {
  // The Figure 1 uSD asymmetry, at the FTL level: simulated time per byte.
  auto seq_ftl = MakeBlockMap(1);
  SimDuration seq_time;
  for (uint64_t lpn = 0; lpn < 1024; ++lpn) {
    Result<SimDuration> w = seq_ftl->WritePage(lpn);
    ASSERT_TRUE(w.ok());
    seq_time += w.value();
  }
  auto rand_ftl = MakeBlockMap(1);
  // Populate first so merges have content to copy.
  for (uint64_t lpn = 0; lpn < rand_ftl->LogicalPageCount(); ++lpn) {
    ASSERT_TRUE(rand_ftl->WritePage(lpn).ok());
  }
  Rng rng(5);
  SimDuration rand_time;
  for (int i = 0; i < 1024; ++i) {
    Result<SimDuration> w = rand_ftl->WritePage(rng.UniformU64(rand_ftl->LogicalPageCount()));
    ASSERT_TRUE(w.ok());
    rand_time += w.value();
  }
  EXPECT_GT(rand_time.nanos(), 5 * seq_time.nanos());
}

TEST(BlockMapFtlTest, NewestLogCopyWins) {
  auto ftl = MakeBlockMap();
  ASSERT_TRUE(ftl->WritePage(10).ok());
  ASSERT_TRUE(ftl->WritePage(10).ok());
  ASSERT_TRUE(ftl->WritePage(10).ok());
  EXPECT_TRUE(ftl->ReadPage(10).ok());
  // Force the merge and re-read: the page must survive.
  Rng rng(9);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(ftl->WritePage(rng.UniformU64(ftl->LogicalPageCount())).ok());
  }
  EXPECT_TRUE(ftl->ReadPage(10).ok());
}

TEST(BlockMapFtlTest, DataSurvivesLogEviction) {
  auto ftl = MakeBlockMap();
  // Touch more logical blocks than there are log blocks.
  const uint32_t ppb = 128;
  for (uint64_t lb = 0; lb < 10; ++lb) {
    ASSERT_TRUE(ftl->WritePage(lb * ppb + 3).ok());
  }
  for (uint64_t lb = 0; lb < 10; ++lb) {
    EXPECT_TRUE(ftl->ReadPage(lb * ppb + 3).ok()) << "lb " << lb;
  }
  EXPECT_LE(ftl->open_log_blocks(), 4u);
}

TEST(BlockMapFtlTest, TrimmedPagesSkippedAtMerge) {
  auto ftl = MakeBlockMap();
  ASSERT_TRUE(ftl->WritePage(0).ok());
  ASSERT_TRUE(ftl->WritePage(1).ok());
  ASSERT_TRUE(ftl->TrimPage(0).ok());
  EXPECT_EQ(ftl->ReadPage(0).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(ftl->ReadPage(1).ok());
  EXPECT_EQ(ftl->Stats().valid_pages, 1u);
}

TEST(BlockMapFtlTest, UtilizationCountsUniquePages) {
  auto ftl = MakeBlockMap();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ftl->WritePage(0).ok());  // same page repeatedly
  }
  EXPECT_EQ(ftl->Stats().valid_pages, 1u);
  EXPECT_LT(ftl->Utilization(), 0.01);
}

TEST(BlockMapFtlTest, HealthReportsSparePool) {
  auto ftl = MakeBlockMap();
  const HealthReport h = ftl->Health();
  EXPECT_EQ(h.spare_blocks_total, 4u);
  EXPECT_EQ(h.spare_blocks_used, 0u);
  EXPECT_EQ(h.life_time_est_b, 0u);
}

TEST(BlockMapFtlTest, WearsOutAndBricks) {
  NandChipConfig nand = TinyChipConfig();
  nand.rated_pe_cycles = 20;
  nand.failure_ceiling = 0.3;
  BlockMapFtl ftl(nand, TinyBlockMapConfig(), 5);
  Rng rng(6);
  Status last = Status::Ok();
  for (uint64_t i = 0; i < 20u * 1000 * 1000 && last.ok(); ++i) {
    last = ftl.WritePage(rng.UniformU64(ftl.LogicalPageCount())).status();
  }
  EXPECT_EQ(last.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(ftl.IsReadOnly());
}

}  // namespace
}  // namespace flashsim
