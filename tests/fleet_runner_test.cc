// Fleet runner determinism and population semantics: device striping over
// the model x workload grid, shard math, thread-count-invariant reports, and
// outcome plausibility on a small bricking population.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/campaign/spec.h"
#include "src/fleet/report.h"
#include "src/fleet/runner.h"
#include "src/fleet/shard.h"

namespace flashsim {
namespace {

// Small enough to run in seconds: 12 devices at the catalog floor scale,
// capped so every device terminates (blu512 bricks at ~175 MiB of host
// writes at this scale; emmc8 at ~690 MiB would be censored by the cap, so
// the fleet mixes bricked and surviving devices).
constexpr char kFleetSpec[] = R"(
campaign fleettest seed=77
workload attack pattern=random request=4KiB total=4MiB span=50%
workload seq pattern=sequential request=64KiB total=4MiB span=25%
fleet pop count=12 devices=blu512,emmc8 workloads=attack,seq scale=256x256 shard=5 slice=4MiB max_device_bytes=256MiB
)";

CampaignSpec ParseTestSpec() {
  const Result<CampaignSpec> parsed = ParseCampaignSpec(kFleetSpec);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.value();
}

std::string ReportWithThreads(int threads) {
  const CampaignSpec spec = ParseTestSpec();
  const FleetSpec* fleet = spec.FindFleet("pop");
  EXPECT_NE(fleet, nullptr);
  FleetRunOptions options;
  options.threads = threads;
  Result<FleetOutcome> run = RunFleet(spec, *fleet, options);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  std::ostringstream os;
  WriteFleetJson(run.value(), os);
  return os.str();
}

TEST(FleetSpecTest, ParsesFleetDirective) {
  const CampaignSpec spec = ParseTestSpec();
  ASSERT_EQ(spec.fleets.size(), 1u);
  const FleetSpec& fleet = spec.fleets[0];
  EXPECT_EQ(fleet.name, "pop");
  EXPECT_EQ(fleet.device_count, 12u);
  EXPECT_EQ(fleet.shard_devices, 5u);
  EXPECT_EQ(fleet.slice_bytes, 4u * 1024 * 1024);
  EXPECT_EQ(fleet.max_device_bytes, 256u * 1024 * 1024);
  EXPECT_EQ(fleet.devices.size(), 2u);
  EXPECT_EQ(fleet.workloads.size(), 2u);
  EXPECT_EQ(FleetShardCount(fleet), 3u);  // ceil(12 / 5)
}

TEST(FleetShardTest, StripesDevicesAcrossModelWorkloadCombos) {
  const CampaignSpec spec = ParseTestSpec();
  const FleetSpec& fleet = spec.fleets[0];
  // combo = index mod 4; model = combo mod 2, workload = combo div 2.
  const FleetDeviceRef d0 = FleetDeviceAt(spec, fleet, 0);
  const FleetDeviceRef d1 = FleetDeviceAt(spec, fleet, 1);
  const FleetDeviceRef d2 = FleetDeviceAt(spec, fleet, 2);
  const FleetDeviceRef d3 = FleetDeviceAt(spec, fleet, 3);
  const FleetDeviceRef d4 = FleetDeviceAt(spec, fleet, 4);
  EXPECT_EQ(d0.model_index, 0u);
  EXPECT_EQ(d1.model_index, 1u);
  EXPECT_EQ(d2.model_index, 0u);
  EXPECT_EQ(d3.model_index, 1u);
  EXPECT_EQ(d4.model_index, 0u);  // wraps
  EXPECT_EQ(d0.workload.name, "attack");
  EXPECT_EQ(d1.workload.name, "attack");
  EXPECT_EQ(d2.workload.name, "seq");
  EXPECT_EQ(d3.workload.name, "seq");
  EXPECT_EQ(d4.workload.name, "attack");
  // Every device gets a distinct seed.
  EXPECT_NE(d0.seed, d1.seed);
  EXPECT_NE(d0.seed, d4.seed);
}

TEST(FleetRunnerTest, ReportIsByteIdenticalAcrossThreadCounts) {
  const std::string t1 = ReportWithThreads(1);
  const std::string t4 = ReportWithThreads(4);
  const std::string t8 = ReportWithThreads(8);
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t1, t8);
}

TEST(FleetRunnerTest, OutcomeCountsAreConsistent) {
  const CampaignSpec spec = ParseTestSpec();
  const FleetSpec* fleet = spec.FindFleet("pop");
  ASSERT_NE(fleet, nullptr);
  FleetRunOptions options;
  options.threads = 2;
  Result<FleetOutcome> run = RunFleet(spec, *fleet, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const FleetOutcome& outcome = run.value();

  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.device_count, 12u);
  EXPECT_EQ(outcome.shard_count, 3u);
  EXPECT_EQ(outcome.acc.DevicesDone(), 12u);
  // The blu512 attack devices (indices 0, 4, 8) brick under the 256 MiB
  // cap; every other arm is censored or survives longer than the cap.
  EXPECT_GE(outcome.acc.DevicesBricked(), 3u);
  EXPECT_LT(outcome.acc.DevicesBricked(), 12u);
  // Parked-state samples were collected (devices parked at least once), and
  // the stored blobs average smaller than the raw snapshots they encode.
  EXPECT_GT(outcome.acc.parked_raw_bytes().count(), 0u);
  EXPECT_EQ(outcome.park.park_events, outcome.acc.parked_raw_bytes().count());
  EXPECT_LT(outcome.park.StoredMean(), outcome.acc.parked_raw_bytes().Mean());
  // Every shard reports its slice count into the imbalance digest.
  EXPECT_EQ(outcome.acc.shard_slices().count(), outcome.shard_count);
  EXPECT_EQ(static_cast<uint64_t>(outcome.acc.shard_slices().sum()),
            outcome.sched.slices);
}

TEST(FleetRunnerTest, DeltaAndFullParkingProduceIdenticalReports) {
  const CampaignSpec spec = ParseTestSpec();
  const FleetSpec* base = spec.FindFleet("pop");
  ASSERT_NE(base, nullptr);

  FleetSpec delta_fleet = *base;
  delta_fleet.park_mode = FleetParkMode::kDelta;
  FleetSpec full_fleet = *base;
  full_fleet.park_mode = FleetParkMode::kFull;

  FleetRunOptions options;
  options.threads = 2;
  Result<FleetOutcome> delta_run = RunFleet(spec, delta_fleet, options);
  Result<FleetOutcome> full_run = RunFleet(spec, full_fleet, options);
  ASSERT_TRUE(delta_run.ok()) << delta_run.status().ToString();
  ASSERT_TRUE(full_run.ok()) << full_run.status().ToString();

  std::ostringstream delta_os;
  std::ostringstream full_os;
  WriteFleetJson(delta_run.value(), delta_os);
  WriteFleetJson(full_run.value(), full_os);
  EXPECT_EQ(delta_os.str(), full_os.str());

  // Delta mode actually chained deltas and stored fewer bytes per park.
  EXPECT_GT(delta_run.value().park.delta_parks, 0u);
  EXPECT_EQ(full_run.value().park.delta_parks, 0u);
  EXPECT_LT(delta_run.value().park.StoredMean(),
            full_run.value().park.StoredMean());
}

TEST(FleetRunnerTest, WorkerScratchDoesNotGrowInSteadyState) {
  // After the first slice of the largest device has sized the scratch
  // buffers, subsequent slices must not reallocate. A single-threaded run
  // uses one scratch for the whole fleet, so a handful of early grows is
  // expected and the count must stay flat as devices multiply: running 12
  // devices must not grow the scratch more than running the same population
  // once warmed. (Exact bound: grows scale with distinct buffer sizes, not
  // slice count.)
  const CampaignSpec spec = ParseTestSpec();
  const FleetSpec* fleet = spec.FindFleet("pop");
  ASSERT_NE(fleet, nullptr);
  FleetRunOptions options;
  options.threads = 1;
  Result<FleetOutcome> run = RunFleet(spec, *fleet, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const FleetOutcome& outcome = run.value();
  ASSERT_GT(outcome.sched.slices, 20u);  // enough slices to be meaningful
  // Warm-up growth only: far fewer grows than slices.
  EXPECT_LT(outcome.park.scratch_grows, outcome.sched.slices / 2);
}

TEST(FleetRunnerTest, ReportMentionsEveryModel) {
  const std::string report = ReportWithThreads(2);
  EXPECT_NE(report.find("\"blu512\""), std::string::npos);
  EXPECT_NE(report.find("\"emmc8\""), std::string::npos);
  EXPECT_NE(report.find("\"survival\""), std::string::npos);
  EXPECT_NE(report.find("\"parked_bytes\""), std::string::npos);
}

}  // namespace
}  // namespace flashsim
