// Dual-implementation equivalence: the indexed victim selection must be
// bit-exact with the linear reference scan. Each test drives two identically
// seeded instances — one per VictimSelect mode — through the same randomized
// op sequence and compares victim-sequence hashes, pick counts, wear, stats,
// and health. Candidate and rebuild counters are excluded: they measure pick
// cost, which differs between modes by design.

#include <algorithm>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "src/fs/logfs.h"
#include "src/simcore/fault_plan.h"
#include "src/simcore/rng.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

void ExpectStatsEquivalent(const FtlStats& linear, const FtlStats& indexed) {
  EXPECT_EQ(linear.victim_seq_hash, indexed.victim_seq_hash);
  EXPECT_EQ(linear.gc_victim_picks, indexed.gc_victim_picks);
  EXPECT_EQ(linear.cache_victim_seq_hash, indexed.cache_victim_seq_hash);
  EXPECT_EQ(linear.cache_evict_picks, indexed.cache_evict_picks);
  EXPECT_EQ(linear.host_pages_written, indexed.host_pages_written);
  EXPECT_EQ(linear.nand_pages_written, indexed.nand_pages_written);
  EXPECT_EQ(linear.gc_pages_migrated, indexed.gc_pages_migrated);
  EXPECT_EQ(linear.erases, indexed.erases);
  EXPECT_EQ(linear.free_blocks, indexed.free_blocks);
  EXPECT_EQ(linear.valid_pages, indexed.valid_pages);
}

void ExpectHealthEquivalent(const HealthReport& a, const HealthReport& b) {
  EXPECT_EQ(a.life_time_est_a, b.life_time_est_a);
  EXPECT_EQ(a.life_time_est_b, b.life_time_est_b);
  EXPECT_DOUBLE_EQ(a.avg_pe_a, b.avg_pe_a);
  EXPECT_DOUBLE_EQ(a.avg_pe_b, b.avg_pe_b);
  EXPECT_EQ(a.spare_blocks_used, b.spare_blocks_used);
  EXPECT_EQ(a.pre_eol, b.pre_eol);
}

// Same randomized op sequence against both FTLs: single writes, sequential
// bursts (the batch path), and trims, over a footprint large enough to keep
// GC and static wear leveling busy on the tiny config.
void DriveSideBySide(PageMapFtl& linear, PageMapFtl& indexed, uint64_t seed,
                     int steps) {
  const uint64_t lpns = linear.LogicalPageCount();
  ASSERT_EQ(lpns, indexed.LogicalPageCount());
  Rng rng(seed);
  for (int step = 0; step < steps; ++step) {
    const uint64_t op = rng.UniformU64(10);
    const uint64_t lpn = rng.UniformU64(lpns);
    if (op < 7) {
      Result<SimDuration> a = linear.WritePage(lpn);
      Result<SimDuration> b = indexed.WritePage(lpn);
      ASSERT_EQ(a.ok(), b.ok()) << "step " << step;
      if (a.ok()) {
        EXPECT_EQ(a.value().nanos(), b.value().nanos()) << "step " << step;
      }
    } else if (op < 9) {
      const uint64_t count = 1 + rng.UniformU64(64);
      const uint64_t start = lpn % (lpns - std::min<uint64_t>(count, lpns - 1));
      Result<SimDuration> a = linear.WritePages(start, count);
      Result<SimDuration> b = indexed.WritePages(start, count);
      ASSERT_EQ(a.ok(), b.ok()) << "step " << step;
      if (a.ok()) {
        EXPECT_EQ(a.value().nanos(), b.value().nanos()) << "step " << step;
      }
    } else {
      EXPECT_EQ(linear.TrimPage(lpn).code(), indexed.TrimPage(lpn).code());
    }
    if (linear.IsReadOnly() || indexed.IsReadOnly()) {
      break;
    }
  }
  EXPECT_EQ(linear.IsReadOnly(), indexed.IsReadOnly());
  ExpectStatsEquivalent(linear.Stats(), indexed.Stats());
  ExpectHealthEquivalent(linear.Health(), indexed.Health());
  EXPECT_TRUE(linear.ValidateInvariants().ok());
  EXPECT_TRUE(indexed.ValidateInvariants().ok());
}

std::unique_ptr<PageMapFtl> MakeFtl(GcPolicy policy, VictimSelect select,
                                    uint64_t seed) {
  FtlConfig config = TinyFtlConfig();
  config.gc_policy = policy;
  config.victim_select = select;
  return std::make_unique<PageMapFtl>(TinyChipConfig(), config, seed);
}

TEST(VictimEquivalenceTest, GreedyPolicyIdenticalVictimSequences) {
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    auto linear = MakeFtl(GcPolicy::kGreedy, VictimSelect::kLinearScan, seed);
    auto indexed = MakeFtl(GcPolicy::kGreedy, VictimSelect::kIndexed, seed);
    DriveSideBySide(*linear, *indexed, seed * 1000 + 5, 6000);
    EXPECT_GT(indexed->Stats().gc_victim_picks, 0u);
  }
}

TEST(VictimEquivalenceTest, CostBenefitPolicyIdenticalVictimSequences) {
  for (uint64_t seed : {2ull, 19ull}) {
    auto linear = MakeFtl(GcPolicy::kCostBenefit, VictimSelect::kLinearScan, seed);
    auto indexed = MakeFtl(GcPolicy::kCostBenefit, VictimSelect::kIndexed, seed);
    DriveSideBySide(*linear, *indexed, seed * 1000 + 5, 6000);
    EXPECT_GT(indexed->Stats().gc_victim_picks, 0u);
  }
}

TEST(VictimEquivalenceTest, SwitchingModesMidRunPreservesSequence) {
  // A device that flips to indexed mid-life must continue the exact victim
  // sequence the always-linear device produces.
  auto reference = MakeFtl(GcPolicy::kGreedy, VictimSelect::kLinearScan, 3);
  auto switching = MakeFtl(GcPolicy::kGreedy, VictimSelect::kLinearScan, 3);
  DriveSideBySide(*reference, *switching, 77, 2500);
  switching->SetVictimSelect(VictimSelect::kIndexed);
  EXPECT_GT(switching->Stats().victim_index_rebuilds, 0u);
  DriveSideBySide(*reference, *switching, 78, 2500);
}

TEST(VictimEquivalenceTest, AnnealRebuildsWearIndexAndStaysEquivalent) {
  // External wear changes (annealing) invalidate the P/E-keyed index; the
  // indexed FTL must detect the chip wear-version bump, rebuild, and keep
  // producing the linear victim sequence.
  auto linear = MakeFtl(GcPolicy::kGreedy, VictimSelect::kLinearScan, 11);
  auto indexed = MakeFtl(GcPolicy::kGreedy, VictimSelect::kIndexed, 11);
  DriveSideBySide(*linear, *indexed, 501, 3000);
  const uint64_t rebuilds_before = indexed->Stats().victim_index_rebuilds;
  linear->mutable_chip().AnnealAll(0.5, SimDuration::Micros(10));
  indexed->mutable_chip().AnnealAll(0.5, SimDuration::Micros(10));
  DriveSideBySide(*linear, *indexed, 502, 3000);
  EXPECT_GT(indexed->Stats().victim_index_rebuilds, rebuilds_before);
}

TEST(VictimEquivalenceTest, SampledInvariantsSkipOnlyFullWalkChecks) {
  auto indexed = MakeFtl(GcPolicy::kGreedy, VictimSelect::kIndexed, 5);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(indexed->WritePage(rng.UniformU64(indexed->LogicalPageCount())).ok());
  }
  EXPECT_TRUE(indexed->ValidateInvariants(/*lpn_stride=*/1).ok());
  EXPECT_TRUE(indexed->ValidateInvariants(/*lpn_stride=*/16).ok());
}

TEST(VictimEquivalenceTest, HybridMinValidCacheEviction) {
  for (const VictimSelect select :
       {VictimSelect::kLinearScan, VictimSelect::kIndexed}) {
    HybridConfig reference_cfg = TinyHybridConfig();
    reference_cfg.cache_evict_policy = CacheEvictPolicy::kMinValid;
    reference_cfg.victim_select = VictimSelect::kLinearScan;
    HybridConfig other_cfg = reference_cfg;
    other_cfg.victim_select = select;
    HybridFtl linear(TinyChipConfig(), TinyFtlConfig(), TinySlcConfig(),
                     reference_cfg, 21);
    HybridFtl indexed(TinyChipConfig(), TinyFtlConfig(), TinySlcConfig(),
                      other_cfg, 21);
    Rng rng(33);
    for (int step = 0; step < 5000; ++step) {
      const uint64_t lpn = rng.UniformU64(linear.LogicalPageCount());
      Result<SimDuration> a = linear.WritePage(lpn);
      Result<SimDuration> b = indexed.WritePage(lpn);
      ASSERT_EQ(a.ok(), b.ok()) << "step " << step;
      if (a.ok()) {
        EXPECT_EQ(a.value().nanos(), b.value().nanos()) << "step " << step;
      }
      if (linear.IsReadOnly() || indexed.IsReadOnly()) {
        break;
      }
    }
    ExpectStatsEquivalent(linear.Stats(), indexed.Stats());
    ExpectHealthEquivalent(linear.Health(), indexed.Health());
    EXPECT_GT(indexed.Stats().cache_evict_picks, 0u);
  }
}

// Power cut landing inside GC relocation: both victim-select modes must fail
// on the same write with the same status, recover to identical state, and —
// after the indexed mode rebuilds its index from the remounted map — keep
// producing the exact linear victim sequence.
TEST(VictimEquivalenceTest, CutDuringGcRecoveryStaysEquivalent) {
  for (const uint64_t cut : {4200ull, 5011ull, 7777ull}) {
    auto linear = MakeFtl(GcPolicy::kGreedy, VictimSelect::kLinearScan, 9);
    auto indexed = MakeFtl(GcPolicy::kGreedy, VictimSelect::kIndexed, 9);
    PowerRail rail_linear;
    PowerRail rail_indexed;
    linear->AttachPowerRail(&rail_linear);
    indexed->AttachPowerRail(&rail_indexed);
    rail_linear.Arm(FaultPlan::AtOpCount(cut));
    rail_indexed.Arm(FaultPlan::AtOpCount(cut));

    Rng rng(cut);
    bool cut_hit = false;
    for (int step = 0; step < 100000 && !cut_hit; ++step) {
      const uint64_t lpn = rng.UniformU64(linear->LogicalPageCount());
      Result<SimDuration> a = linear->WritePage(lpn);
      Result<SimDuration> b = indexed->WritePage(lpn);
      ASSERT_EQ(a.ok(), b.ok()) << "step " << step;
      if (!a.ok()) {
        ASSERT_EQ(StatusCode::kPowerLoss, a.status().code());
        ASSERT_EQ(StatusCode::kPowerLoss, b.status().code());
        cut_hit = true;
      }
    }
    ASSERT_TRUE(cut_hit);
    // The cut landed in GC-heavy steady state, so interrupted relocations
    // are in play, not just interrupted host writes.
    EXPECT_GT(linear->Stats().gc_pages_migrated, 0u);
    EXPECT_EQ(rail_linear.destructive_ops(), rail_indexed.destructive_ops());

    rail_linear.Restore();
    rail_indexed.Restore();
    Result<RecoveryReport> rep_linear = linear->Mount();
    Result<RecoveryReport> rep_indexed = indexed->Mount();
    ASSERT_TRUE(rep_linear.ok());
    ASSERT_TRUE(rep_indexed.ok());
    EXPECT_EQ(rep_linear.value().torn_pages_discarded,
              rep_indexed.value().torn_pages_discarded);
    EXPECT_EQ(rep_linear.value().mapped_pages_recovered,
              rep_indexed.value().mapped_pages_recovered);
    // Post-recovery: the rebuilt index must reproduce the from-scratch
    // linear victim choices, pick for pick.
    DriveSideBySide(*linear, *indexed, cut + 1, 3000);
  }
}

// Power cut mid-CleanOneSegment: the LogFs cleaner is busiest during sync
// churn over a durable (fsynced) file, so a cut there interrupts live-block
// relocation. Both cleaner modes must recover the same namespace and keep
// identical victim sequences after the remount.
TEST(VictimEquivalenceTest, CutDuringCleaningRecoveryStaysEquivalent) {
  for (const uint64_t cut : {30000ull, 33333ull}) {
    auto dev_linear = MakeDurableDevice(13);
    auto dev_indexed = MakeDurableDevice(13);
    PowerRail rail_linear;
    PowerRail rail_indexed;
    rail_linear.AttachClock(&dev_linear->clock());
    rail_indexed.AttachClock(&dev_indexed->clock());
    dev_linear->AttachPowerRail(&rail_linear);
    dev_indexed->AttachPowerRail(&rail_indexed);
    rail_linear.Arm(FaultPlan::AtOpCount(cut));
    rail_indexed.Arm(FaultPlan::AtOpCount(cut));

    LogFsConfig linear_cfg;
    linear_cfg.blocks_per_segment = 64;
    linear_cfg.cleaner_free_watermark = 4;
    linear_cfg.victim_select = VictimSelect::kLinearScan;
    LogFsConfig indexed_cfg = linear_cfg;
    indexed_cfg.victim_select = VictimSelect::kIndexed;
    LogFs linear(*dev_linear, linear_cfg);
    LogFs indexed(*dev_indexed, indexed_cfg);
    ASSERT_TRUE(linear.Create("churn").ok());
    ASSERT_TRUE(indexed.Create("churn").ok());
    const uint64_t file_bytes = linear.FreeBytes() / 2;

    auto both = [&](uint64_t offset, uint64_t length, bool sync) {
      Result<SimDuration> a = linear.Write("churn", offset, length, sync);
      Result<SimDuration> b = indexed.Write("churn", offset, length, sync);
      EXPECT_EQ(a.ok(), b.ok());
      if (!a.ok()) {
        EXPECT_EQ(a.status().code(), b.status().code());
      }
      return a.ok() ? Status::Ok() : a.status();
    };

    // Fill and pin durable, then churn until the cut fires.
    bool cut_hit = false;
    for (uint64_t off = 0; off < file_bytes && !cut_hit; off += 65536) {
      cut_hit = both(off, std::min<uint64_t>(65536, file_bytes - off), false).code() ==
                StatusCode::kPowerLoss;
    }
    if (!cut_hit) {
      ASSERT_TRUE(linear.Fsync("churn").ok());
      ASSERT_TRUE(indexed.Fsync("churn").ok());
      Rng rng(cut);
      for (int step = 0; step < 60000 && !cut_hit; ++step) {
        const uint64_t offset = (rng.UniformU64(file_bytes) / 4096) * 4096;
        cut_hit = both(offset, 4096, true).code() == StatusCode::kPowerLoss;
      }
    }
    ASSERT_TRUE(cut_hit);
    EXPECT_GT(linear.segments_cleaned(), 0u);
    EXPECT_EQ(linear.segments_cleaned(), indexed.segments_cleaned());

    rail_linear.Restore();
    rail_indexed.Restore();
    ASSERT_TRUE(dev_linear->Remount().ok());
    ASSERT_TRUE(dev_indexed->Remount().ok());
    Result<RecoveryReport> rep_linear = linear.Mount();
    Result<RecoveryReport> rep_indexed = indexed.Mount();
    ASSERT_TRUE(rep_linear.ok());
    ASSERT_TRUE(rep_indexed.ok());
    EXPECT_EQ(rep_linear.value().files_recovered, rep_indexed.value().files_recovered);
    EXPECT_EQ(rep_linear.value().segments_replayed, rep_indexed.value().segments_replayed);
    EXPECT_EQ(linear.FileSize("churn").ok(), indexed.FileSize("churn").ok());

    // Post-recovery churn: the indexed cleaner's rebuilt segment index must
    // keep matching the linear reference scan, pick for pick.
    if (linear.FileSize("churn").ok() && linear.FileSize("churn").value() > 0) {
      const uint64_t recovered_bytes = linear.FileSize("churn").value();
      Rng rng(cut + 1);
      for (int step = 0; step < 2000; ++step) {
        const uint64_t offset = (rng.UniformU64(recovered_bytes) / 4096) * 4096;
        ASSERT_EQ(Status::Ok().code(), both(offset, 4096, true).code()) << "step " << step;
        ASSERT_EQ(linear.stats().cleaner_victim_hash, indexed.stats().cleaner_victim_hash)
            << "step " << step << " picks " << linear.stats().cleaner_picks << " vs "
            << indexed.stats().cleaner_picks;
      }
    }
    EXPECT_EQ(linear.segments_cleaned(), indexed.segments_cleaned());
    EXPECT_EQ(linear.stats().cleaner_picks, indexed.stats().cleaner_picks);
    EXPECT_EQ(linear.stats().cleaner_victim_hash, indexed.stats().cleaner_victim_hash);
    ExpectStatsEquivalent(dev_linear->ftl().Stats(), dev_indexed->ftl().Stats());
    ExpectHealthEquivalent(dev_linear->ftl().Health(), dev_indexed->ftl().Health());
  }
}

TEST(VictimEquivalenceTest, LogFsCleanerIdenticalVictimSequences) {
  // Two durable devices, two LogFs instances differing only in cleaner
  // victim location; a churny overwrite workload forces segment cleaning.
  auto dev_a = MakeDurableDevice(13);
  auto dev_b = MakeDurableDevice(13);
  LogFsConfig linear_cfg;
  linear_cfg.blocks_per_segment = 64;
  linear_cfg.cleaner_free_watermark = 4;
  linear_cfg.victim_select = VictimSelect::kLinearScan;
  LogFsConfig indexed_cfg = linear_cfg;
  indexed_cfg.victim_select = VictimSelect::kIndexed;
  LogFs linear(*dev_a, linear_cfg);
  LogFs indexed(*dev_b, indexed_cfg);
  ASSERT_TRUE(linear.Create("churn").ok());
  ASSERT_TRUE(indexed.Create("churn").ok());
  const uint64_t file_bytes = linear.FreeBytes() * 3 / 4;
  // Bulk sequential rewrite passes: each pass invalidates the previous one,
  // so by the third the free pool is below the cleaner watermark and every
  // further append forces cleaning on both instances.
  for (int pass = 0; pass < 3; ++pass) {
    for (uint64_t off = 0; off < file_bytes; off += 65536) {
      const uint64_t len = std::min<uint64_t>(65536, file_bytes - off);
      Result<SimDuration> a = linear.Write("churn", off, len, /*sync=*/false);
      Result<SimDuration> b = indexed.Write("churn", off, len, /*sync=*/false);
      ASSERT_EQ(a.ok(), b.ok()) << "pass " << pass << " off " << off;
      if (a.ok()) {
        EXPECT_EQ(a.value().nanos(), b.value().nanos())
            << "pass " << pass << " off " << off;
      }
    }
  }
  // Fine-grained churn: random 4 KiB sync overwrites keep the cleaner busy
  // with skewed per-segment valid counts.
  Rng rng(55);
  for (int step = 0; step < 1500; ++step) {
    const uint64_t offset = (rng.UniformU64(file_bytes) / 4096) * 4096;
    Result<SimDuration> a = linear.Write("churn", offset, 4096, /*sync=*/true);
    Result<SimDuration> b = indexed.Write("churn", offset, 4096, /*sync=*/true);
    ASSERT_EQ(a.ok(), b.ok()) << "step " << step;
    if (a.ok()) {
      EXPECT_EQ(a.value().nanos(), b.value().nanos()) << "step " << step;
    }
  }
  EXPECT_GT(indexed.segments_cleaned(), 0u);
  EXPECT_EQ(linear.segments_cleaned(), indexed.segments_cleaned());
  EXPECT_EQ(linear.stats().cleaner_picks, indexed.stats().cleaner_picks);
  EXPECT_EQ(linear.stats().cleaner_victim_hash, indexed.stats().cleaner_victim_hash);
  EXPECT_EQ(linear.stats().cleaner_bytes_moved, indexed.stats().cleaner_bytes_moved);
  EXPECT_EQ(linear.stats().DeviceBytesTotal(), indexed.stats().DeviceBytesTotal());
  ExpectStatsEquivalent(dev_a->ftl().Stats(), dev_b->ftl().Stats());
}

}  // namespace
}  // namespace flashsim
