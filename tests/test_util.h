// Shared fixtures: tiny device/FTL configurations that keep unit tests fast
// while exercising the same code paths as the full-size catalog devices.

#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <memory>

#include "src/device/flash_device.h"
#include "src/ftl/hybrid_ftl.h"
#include "src/ftl/page_map_ftl.h"
#include "src/nand/config.h"

namespace flashsim {

// 16 MiB MLC chip: 32 blocks of 128 x 4 KiB pages.
inline NandChipConfig TinyChipConfig() {
  NandChipConfig nand = MakeMlcConfig();
  nand.name = "tiny-mlc";
  nand.channels = 1;
  nand.dies_per_channel = 2;
  nand.blocks_per_die = 16;
  nand.pages_per_block = 128;
  nand.page_size_bytes = 4096;
  nand.rated_pe_cycles = 200;
  return nand;
}

inline FtlConfig TinyFtlConfig() {
  FtlConfig ftl;
  ftl.over_provisioning = 0.10;
  ftl.spare_blocks = 4;
  ftl.gc_free_block_watermark = 3;
  ftl.health_rated_pe = 100;
  ftl.wear_level_threshold = 4;
  ftl.wear_level_check_interval = 8;
  return ftl;
}

inline std::unique_ptr<PageMapFtl> MakeTinyFtl(uint64_t seed = 1) {
  return std::make_unique<PageMapFtl>(TinyChipConfig(), TinyFtlConfig(), seed);
}

// Tiny hybrid: 4 MiB SLC cache (8 blocks) in front of the MLC pool.
inline NandChipConfig TinySlcConfig() {
  NandChipConfig slc = MakeSlcConfig();
  slc.name = "tiny-slc";
  slc.channels = 1;
  slc.dies_per_channel = 1;
  slc.blocks_per_die = 8;
  slc.pages_per_block = 128;
  slc.page_size_bytes = 4096;
  slc.rated_pe_cycles = 2000;
  return slc;
}

inline HybridConfig TinyHybridConfig() {
  HybridConfig hybrid;
  hybrid.cache_blocks = 8;
  hybrid.cache_free_watermark = 6;
  hybrid.merge_utilization_threshold = 0.80;
  hybrid.gc_pressure_ratio = 0.5;
  hybrid.mlc_mode_wear_weight = 8;
  hybrid.health_rated_pe_a = 1000;
  return hybrid;
}

inline std::unique_ptr<HybridFtl> MakeTinyHybrid(uint64_t seed = 1) {
  return std::make_unique<HybridFtl>(TinyChipConfig(), TinyFtlConfig(), TinySlcConfig(),
                                     TinyHybridConfig(), seed);
}

inline std::unique_ptr<FlashDevice> MakeTinyDevice(uint64_t seed = 1) {
  FlashDeviceConfig dev;
  dev.name = "tiny-device";
  dev.perf.per_request_overhead = SimDuration::Micros(100);
  dev.perf.bus_mib_per_sec = 100.0;
  dev.perf.effective_parallelism = 4;
  return std::make_unique<FlashDevice>(std::move(dev), MakeTinyFtl(seed));
}

// A tiny device that never wears out, for FS/Android tests where endurance
// is out of scope.
inline std::unique_ptr<FlashDevice> MakeDurableDevice(uint64_t seed = 1) {
  NandChipConfig nand = TinyChipConfig();
  nand.blocks_per_die = 64;  // 64 MiB
  nand.rated_pe_cycles = 1000000;
  FtlConfig ftl = TinyFtlConfig();
  ftl.health_rated_pe = 1000000;
  FlashDeviceConfig dev;
  dev.name = "durable-device";
  dev.perf.per_request_overhead = SimDuration::Micros(100);
  dev.perf.bus_mib_per_sec = 100.0;
  dev.perf.effective_parallelism = 4;
  auto impl = std::make_unique<PageMapFtl>(nand, ftl, seed);
  return std::make_unique<FlashDevice>(std::move(dev), std::move(impl));
}

}  // namespace flashsim

#endif  // TESTS_TEST_UTIL_H_
