// Streaming sketch properties the fleet report depends on: exact MergeStats
// merging, WearDigest quantile accuracy and merge/save determinism, and
// DayHistogram folding.

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/fleet/sketch.h"

namespace flashsim {
namespace {

TEST(MergeStatsTest, TracksCountSumMinMax) {
  MergeStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  s.Add(3.0);
  s.Add(-1.0);
  s.Add(10.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 4.0);
}

TEST(MergeStatsTest, MergeIsExactAndHandlesEmpty) {
  MergeStats a;
  MergeStats b;
  a.Add(1.0);
  a.Add(2.0);
  b.Add(-5.0);

  MergeStats merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_DOUBLE_EQ(merged.sum(), -2.0);
  EXPECT_DOUBLE_EQ(merged.min(), -5.0);
  EXPECT_DOUBLE_EQ(merged.max(), 2.0);

  MergeStats empty;
  merged.Merge(empty);
  EXPECT_EQ(merged.count(), 3u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
}

TEST(MergeStatsTest, SaveLoadRoundTrip) {
  MergeStats s;
  s.Add(0.25);
  s.Add(1e9);
  SnapshotWriter w;
  s.Save(w);
  SnapshotReader r(w.buffer());
  MergeStats loaded;
  ASSERT_TRUE(loaded.Load(r).ok());
  EXPECT_EQ(loaded.count(), s.count());
  EXPECT_DOUBLE_EQ(loaded.sum(), s.sum());
  EXPECT_DOUBLE_EQ(loaded.min(), s.min());
  EXPECT_DOUBLE_EQ(loaded.max(), s.max());
}

TEST(WearDigestTest, SmallSampleSetsAreExact) {
  WearDigest d;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    d.Add(v);
  }
  EXPECT_EQ(d.count(), 5u);
  EXPECT_DOUBLE_EQ(d.Mean(), 3.0);
  // With fewer samples than the buffer the quantiles are interpolations of
  // the exact sorted sample set.
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), 5.0);
  EXPECT_NEAR(d.Quantile(0.5), 3.0, 1e-9);
}

TEST(WearDigestTest, QuantilesApproximateUniformDistribution) {
  WearDigest d(128);
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> uniform(0.0, 1000.0);
  for (int i = 0; i < 50000; ++i) {
    d.Add(uniform(rng));
  }
  EXPECT_EQ(d.count(), 50000u);
  // 2% of the range is a loose bound; the digest is much tighter in the
  // tails by construction.
  EXPECT_NEAR(d.Quantile(0.5), 500.0, 20.0);
  EXPECT_NEAR(d.Quantile(0.1), 100.0, 20.0);
  EXPECT_NEAR(d.Quantile(0.9), 900.0, 20.0);
  EXPECT_NEAR(d.Quantile(0.99), 990.0, 10.0);
}

TEST(WearDigestTest, IdenticalFeedOrderGivesIdenticalSerializedState) {
  // The fleet determinism contract needs "same observation sequence → same
  // bytes", not cross-order equality.
  WearDigest a(64);
  WearDigest b(64);
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) {
    samples.push_back(uniform(rng));
  }
  for (double v : samples) {
    a.Add(v);
    b.Add(v);
  }
  SnapshotWriter wa;
  SnapshotWriter wb;
  a.Save(wa);
  b.Save(wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());
}

TEST(WearDigestTest, MergePreservesCountSumAndTailBounds) {
  WearDigest a(64);
  WearDigest b(64);
  for (int i = 0; i < 5000; ++i) {
    a.Add(static_cast<double>(i));           // 0..4999
    b.Add(static_cast<double>(i) + 5000.0);  // 5000..9999
  }
  WearDigest merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.count(), 10000u);
  EXPECT_NEAR(merged.Mean(), 4999.5, 1e-6);
  EXPECT_DOUBLE_EQ(merged.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(merged.Quantile(1.0), 9999.0);
  EXPECT_NEAR(merged.Quantile(0.5), 4999.5, 200.0);
}

TEST(WearDigestTest, SaveLoadPreservesExactInMemoryState) {
  // Save() must serialize the digest as-is (buffer included), so a restored
  // digest continues on the same compression trajectory — this is what makes
  // checkpointed fleet runs bit-exact with uninterrupted ones.
  WearDigest d(32);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> uniform(0.0, 10.0);
  for (int i = 0; i < 777; ++i) {  // deliberately leaves a partial buffer
    d.Add(uniform(rng));
  }
  SnapshotWriter w;
  d.Save(w);
  SnapshotReader r(w.buffer());
  WearDigest loaded;
  ASSERT_TRUE(loaded.Load(r).ok());

  // Continue both with the same samples: serialized states must stay equal.
  for (int i = 0; i < 500; ++i) {
    const double v = uniform(rng);
    d.Add(v);
    loaded.Add(v);
  }
  SnapshotWriter w1;
  SnapshotWriter w2;
  d.Save(w1);
  loaded.Save(w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
}

TEST(DayHistogramTest, AddMergeAndRoundTrip) {
  DayHistogram h;
  h.Add(3);
  h.Add(3);
  h.Add(10, 5);
  EXPECT_EQ(h.total(), 7u);
  ASSERT_EQ(h.bins().size(), 2u);
  EXPECT_EQ(h.bins().at(3), 2u);
  EXPECT_EQ(h.bins().at(10), 5u);

  DayHistogram other;
  other.Add(3);
  other.Add(0);
  h.Merge(other);
  EXPECT_EQ(h.total(), 9u);
  EXPECT_EQ(h.bins().at(3), 3u);
  EXPECT_EQ(h.bins().at(0), 1u);

  SnapshotWriter w;
  h.Save(w);
  SnapshotReader r(w.buffer());
  DayHistogram loaded;
  ASSERT_TRUE(loaded.Load(r).ok());
  EXPECT_EQ(loaded.bins(), h.bins());
  EXPECT_EQ(loaded.total(), h.total());
}

}  // namespace
}  // namespace flashsim
