// Golden reproduction tests: pin the simulator to the paper's headline
// numbers (coarse sim scale for speed; scale invariance is tested
// separately). If any of these fails after a change, a published result has
// drifted — treat it as a calibration regression, not a flaky test.

#include <gtest/gtest.h>

#include "src/device/catalog.h"
#include "src/nand/config.h"
#include "src/simcore/units.h"
#include "src/wearlab/lifetime_estimator.h"
#include "src/wearlab/paper_targets.h"
#include "src/wearlab/wearout_experiment.h"

namespace flashsim {
namespace {

constexpr SimScale kScale{32, 32};

TEST(PaperTargetsTest, Emmc8GiBPerLevelUnderPaperMaximum) {
  auto device = MakeEmmc8(kScale, 3);
  WearWorkloadConfig w;
  w.footprint_bytes = (400 * kMiB) / kScale.capacity_div;
  WearOutExperiment exp(*device, w);
  const WearRunOutcome out = exp.Run(3, 256 * kGiB);
  ASSERT_GE(out.transitions.size(), 3u);
  for (const WearTransition& t : out.transitions) {
    const double gib = static_cast<double>(t.host_bytes) * kScale.VolumeFactor() / kGiB;
    EXPECT_LE(gib, PaperTargets::kEmmc8MaxGiBPerLevel)
        << "level " << t.from_level << "-" << t.to_level;
    EXPECT_GE(gib, PaperTargets::kEmmc8MaxGiBPerLevel * 0.6)
        << "suspiciously easy wear — calibration drifted the other way";
  }
}

TEST(PaperTargetsTest, EnvelopeOptimismFactorInPaperBand) {
  auto device = MakeEmmc8(kScale, 3);
  WearWorkloadConfig w;
  w.footprint_bytes = (400 * kMiB) / kScale.capacity_div;
  WearOutExperiment exp(*device, w);
  const WearRunOutcome out = exp.RunUntilLevel(WearType::kSinglePool, 11, 1 * kTiB);
  const double measured =
      static_cast<double>(out.total_host_bytes) * kScale.VolumeFactor();
  LifetimeEstimator envelope(8 * kGiB, PaperTargets::kMlcRatedPeLow);
  const double optimism = envelope.OptimismFactor(measured);
  EXPECT_GE(optimism, PaperTargets::kEnvelopeOptimismMin);
  EXPECT_LE(optimism, PaperTargets::kEnvelopeOptimismMax);
}

TEST(PaperTargetsTest, Emmc16TotalEolNearPaper) {
  auto device = MakeEmmc16(kScale, 3);
  WearWorkloadConfig w;
  w.footprint_bytes = (400 * kMiB) / kScale.capacity_div;
  WearOutExperiment exp(*device, w);
  const WearRunOutcome out = exp.RunUntilLevel(WearType::kTypeB, 11, 1 * kTiB);
  const double tib =
      static_cast<double>(out.total_host_bytes) * kScale.VolumeFactor() / kTiB;
  EXPECT_TRUE(WithinRel(tib, PaperTargets::kEmmc16TiBToEol, 0.15))
      << "measured " << tib << " TiB vs paper " << PaperTargets::kEmmc16TiBToEol;
}

TEST(PaperTargetsTest, TypeALevel12MatchesPaper) {
  auto device = MakeEmmc16(kScale, 5);
  WearWorkloadConfig w;
  w.footprint_bytes = (400 * kMiB) / kScale.capacity_div;
  WearOutExperiment exp(*device, w);
  // Run until the FIRST Type A transition (low utilization throughout).
  WearRunOutcome out;
  double a_gib = 0.0;
  for (int i = 0; i < 16; ++i) {
    out = exp.Run(1, 64 * kGiB);
    bool found = false;
    for (const WearTransition& t : out.transitions) {
      if (t.type == WearType::kTypeA) {
        a_gib = static_cast<double>(t.host_bytes) * kScale.VolumeFactor() / kGiB;
        found = true;
      }
    }
    if (found) {
      break;
    }
  }
  ASSERT_GT(a_gib, 0.0) << "no Type A transition observed";
  EXPECT_TRUE(WithinRel(a_gib, PaperTargets::kTypeALevel12GiB, 0.15))
      << "measured " << a_gib << " GiB vs paper " << PaperTargets::kTypeALevel12GiB;
}

TEST(PaperTargetsTest, AttackFootprintUnderThreePercent) {
  // The canonical workload: four 100 MB files on a 16 GB device.
  const double footprint = 4.0 * 100 * kMiB;
  const double capacity = 16.0 * kGiB;
  EXPECT_LT(footprint / capacity, PaperTargets::kAttackFootprintFraction);
}

TEST(PaperTargetsTest, CellEnduranceConstantsMatchSection21) {
  EXPECT_EQ(MakeSlcConfig().rated_pe_cycles, PaperTargets::kSlcRatedPe);
  EXPECT_EQ(MakeMlcConfig().rated_pe_cycles, PaperTargets::kMlcRatedPeLow);
  EXPECT_EQ(MakeTlcConfig().rated_pe_cycles, PaperTargets::kTlcRatedPe);
}

TEST(PaperTargetsTest, WithinRelHelper) {
  EXPECT_TRUE(WithinRel(100.0, 100.0, 0.0));
  EXPECT_TRUE(WithinRel(110.0, 100.0, 0.10));
  EXPECT_FALSE(WithinRel(111.0, 100.0, 0.10));
  EXPECT_FALSE(WithinRel(89.0, 100.0, 0.10));
}

}  // namespace
}  // namespace flashsim
