// Differential/fuzz testing of the page-mapped FTL: random operation mixes,
// then an exhaustive internal-consistency audit (map <-> OOB tags <-> valid
// counts <-> free pool). Each parameterized case uses a different seed and
// operation mix, so a regression in GC, wear leveling, or trim bookkeeping
// trips an invariant rather than silently corrupting results.

#include <gtest/gtest.h>

#include "src/ftl/page_map_ftl.h"
#include "src/simcore/rng.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

struct FuzzCase {
  uint64_t seed;
  double write_prob;   // vs trim
  uint64_t hot_pages;  // working-set size
  int ops;
};

class FtlFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FtlFuzz, InvariantsHoldUnderRandomOps) {
  const FuzzCase c = GetParam();
  NandChipConfig nand = TinyChipConfig();
  nand.rated_pe_cycles = 1000000;  // keep failures out; they are fuzzed below
  FtlConfig cfg = TinyFtlConfig();
  cfg.health_rated_pe = 1000000;
  PageMapFtl ftl(nand, cfg, c.seed);
  Rng rng(c.seed ^ 0xf00d);
  const uint64_t span = std::min<uint64_t>(c.hot_pages, ftl.LogicalPageCount());
  for (int i = 0; i < c.ops; ++i) {
    const uint64_t lpn = rng.UniformU64(span);
    if (rng.Bernoulli(c.write_prob)) {
      ASSERT_TRUE(ftl.WritePage(lpn).ok());
    } else {
      ASSERT_TRUE(ftl.TrimPage(lpn).ok());
    }
    if (i % 5000 == 4999) {
      ASSERT_TRUE(ftl.ValidateInvariants().ok()) << "after op " << i;
    }
  }
  EXPECT_TRUE(ftl.ValidateInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, FtlFuzz,
    ::testing::Values(FuzzCase{1, 0.95, 512, 30000},    // write-heavy, small set
                      FuzzCase{2, 0.60, 3000, 30000},   // heavy trim churn
                      FuzzCase{3, 0.99, 64, 40000},     // hot-spot hammering
                      FuzzCase{4, 0.80, 100000, 30000},  // whole-space sprawl
                      FuzzCase{5, 0.50, 2048, 30000}),  // half trims
    [](const ::testing::TestParamInfo<FuzzCase>& param_info) {
      return "seed" + std::to_string(param_info.param.seed);
    });

TEST(FtlInvariantsTest, HoldAfterWearFailures) {
  // With aggressive failure injection the FTL retires blocks mid-write; the
  // bookkeeping must survive that too.
  NandChipConfig nand = TinyChipConfig();
  nand.rated_pe_cycles = 40;
  nand.failure_ceiling = 0.2;
  FtlConfig cfg = TinyFtlConfig();
  cfg.health_rated_pe = 20;
  PageMapFtl ftl(nand, cfg, 11);
  Rng rng(99);
  for (int i = 0; i < 2000000; ++i) {
    if (!ftl.WritePage(rng.UniformU64(256)).ok()) {
      break;  // device died — expected eventually
    }
    if (i % 20000 == 19999) {
      ASSERT_TRUE(ftl.ValidateInvariants().ok()) << "after op " << i;
    }
  }
  EXPECT_TRUE(ftl.ValidateInvariants().ok());
}

TEST(FtlInvariantsTest, HoldAfterFullDrainAndRefill) {
  auto ftl = MakeTinyFtl(21);
  const uint64_t logical = ftl->LogicalPageCount();
  for (uint64_t lpn = 0; lpn < logical; ++lpn) {
    ASSERT_TRUE(ftl->WritePage(lpn).ok());
  }
  ASSERT_TRUE(ftl->ValidateInvariants().ok());
  for (uint64_t lpn = 0; lpn < logical; ++lpn) {
    ASSERT_TRUE(ftl->TrimPage(lpn).ok());
  }
  ASSERT_TRUE(ftl->ValidateInvariants().ok());
  EXPECT_EQ(ftl->Stats().valid_pages, 0u);
  for (uint64_t lpn = 0; lpn < logical; ++lpn) {
    ASSERT_TRUE(ftl->WritePage(lpn).ok());
  }
  EXPECT_TRUE(ftl->ValidateInvariants().ok());
}

}  // namespace
}  // namespace flashsim
