#include "src/ftl/hybrid_ftl.h"

#include <gtest/gtest.h>

#include "src/simcore/rng.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

TEST(HybridFtlTest, LogicalSpaceComesFromMlcPool) {
  auto hybrid = MakeTinyHybrid();
  auto plain = MakeTinyFtl();
  EXPECT_EQ(hybrid->LogicalPageCount(), plain->LogicalPageCount());
  EXPECT_EQ(hybrid->PageSizeBytes(), 4096u);
}

TEST(HybridFtlTest, WriteLandsInCacheFirst) {
  auto hybrid = MakeTinyHybrid();
  ASSERT_TRUE(hybrid->WritePage(0).ok());
  EXPECT_EQ(hybrid->cache_resident_pages(), 1u);
  EXPECT_GT(hybrid->cache_chip().counters().Get("nand.programs"), 0u);
  // Nothing migrated to MLC yet.
  EXPECT_EQ(hybrid->mlc_pool().Stats().nand_pages_written, 0u);
}

TEST(HybridFtlTest, ReadHitsCacheThenMlc) {
  auto hybrid = MakeTinyHybrid();
  ASSERT_TRUE(hybrid->WritePage(0).ok());
  ASSERT_TRUE(hybrid->ReadPage(0).ok());
  EXPECT_GT(hybrid->cache_chip().counters().Get("nand.reads"), 0u);
  // Force eviction by writing a lot; then the read must come from MLC.
  for (uint64_t i = 1; i < 2000; ++i) {
    ASSERT_TRUE(hybrid->WritePage(i % hybrid->LogicalPageCount()).ok());
  }
  ASSERT_TRUE(hybrid->ReadPage(0).ok());
}

TEST(HybridFtlTest, EvictionMigratesToMlc) {
  auto hybrid = MakeTinyHybrid();
  // Write more than the cache pipeline holds (8 blocks x 128 pages = 1024).
  for (uint64_t i = 0; i < 2048; ++i) {
    ASSERT_TRUE(hybrid->WritePage(i % hybrid->LogicalPageCount()).ok());
  }
  EXPECT_GT(hybrid->mlc_pool().Stats().nand_pages_written, 0u);
  // Cache stays bounded.
  EXPECT_LE(hybrid->cache_resident_pages(), 8u * 128);
}

TEST(HybridFtlTest, ReadUnwrittenNotFound) {
  auto hybrid = MakeTinyHybrid();
  EXPECT_EQ(hybrid->ReadPage(0).status().code(), StatusCode::kNotFound);
}

TEST(HybridFtlTest, OutOfRangeRejected) {
  auto hybrid = MakeTinyHybrid();
  const uint64_t beyond = hybrid->LogicalPageCount();
  EXPECT_EQ(hybrid->WritePage(beyond).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(hybrid->ReadPage(beyond).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(hybrid->TrimPage(beyond).code(), StatusCode::kOutOfRange);
}

TEST(HybridFtlTest, TrimDropsCacheAndMlcCopies) {
  auto hybrid = MakeTinyHybrid();
  ASSERT_TRUE(hybrid->WritePage(7).ok());
  ASSERT_TRUE(hybrid->TrimPage(7).ok());
  EXPECT_EQ(hybrid->ReadPage(7).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(hybrid->cache_resident_pages(), 0u);
}

TEST(HybridFtlTest, HealthReportsBothTypes) {
  auto hybrid = MakeTinyHybrid();
  const HealthReport h = hybrid->Health();
  EXPECT_TRUE(h.supported);
  EXPECT_GE(h.life_time_est_a, 1u);
  EXPECT_GE(h.life_time_est_b, 1u);
  EXPECT_EQ(h.rated_pe_a, TinyHybridConfig().health_rated_pe_a);
  EXPECT_EQ(h.rated_pe_b, TinyFtlConfig().health_rated_pe);
}

TEST(HybridFtlTest, TypeAWearsSlowerThanTypeBAtLowUtilization) {
  auto hybrid = MakeTinyHybrid();
  // Rewrite a small region for a while (well below merge utilization).
  for (int round = 0; round < 40; ++round) {
    for (uint64_t lpn = 0; lpn < 512; ++lpn) {
      ASSERT_TRUE(hybrid->WritePage(lpn).ok());
    }
  }
  const HealthReport h = hybrid->Health();
  const double frac_a = h.avg_pe_a / h.rated_pe_a;
  const double frac_b = h.avg_pe_b / h.rated_pe_b;
  EXPECT_GT(frac_b, frac_a) << "Type A (huge endurance) must age slower";
}

TEST(HybridFtlTest, MergedModeRequiresUtilizationAndPressure) {
  auto hybrid = MakeTinyHybrid();
  EXPECT_FALSE(hybrid->InMergedMode());
  // Fill to ~90% of logical space.
  const uint64_t logical = hybrid->LogicalPageCount();
  for (uint64_t lpn = 0; lpn < logical * 9 / 10; ++lpn) {
    ASSERT_TRUE(hybrid->WritePage(lpn).ok());
  }
  // Rewrite utilized space at random: GC pressure + utilization -> merge.
  Rng rng(5);
  for (int i = 0; i < 30000 && !hybrid->InMergedMode(); ++i) {
    ASSERT_TRUE(hybrid->WritePage(rng.UniformU64(logical * 9 / 10)).ok());
  }
  EXPECT_TRUE(hybrid->InMergedMode());
  EXPECT_TRUE(hybrid->mlc_pool().divert_gc_wear());
}

TEST(HybridFtlTest, MergedModeAcceleratesTypeAWear) {
  auto hybrid = MakeTinyHybrid();
  const uint64_t logical = hybrid->LogicalPageCount();
  // Phase 1: low utilization baseline wear rate.
  for (int i = 0; i < 4096; ++i) {
    ASSERT_TRUE(hybrid->WritePage(i % 512).ok());
  }
  const double wear_low = hybrid->Health().avg_pe_a;
  // Phase 2: fill to 90% and rewrite utilized space.
  for (uint64_t lpn = 0; lpn < logical * 9 / 10; ++lpn) {
    ASSERT_TRUE(hybrid->WritePage(lpn).ok());
  }
  const double wear_before = hybrid->Health().avg_pe_a;
  Rng rng(6);
  for (int i = 0; i < 4096; ++i) {
    ASSERT_TRUE(hybrid->WritePage(rng.UniformU64(logical * 9 / 10)).ok());
  }
  const double wear_high = hybrid->Health().avg_pe_a;
  // Same write count, far more Type A wear in the merged regime.
  EXPECT_GT(wear_high - wear_before, 3.0 * (wear_low - 0.0));
}

TEST(HybridFtlTest, StatsCombineCacheAndPool) {
  auto hybrid = MakeTinyHybrid();
  for (uint64_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(hybrid->WritePage(i % 1024).ok());
  }
  const FtlStats s = hybrid->Stats();
  EXPECT_EQ(s.host_pages_written, 3000u);
  // Cache program + migration to MLC: WA close to 2 in steady state.
  EXPECT_GT(s.WriteAmplification(), 1.3);
  EXPECT_LT(s.WriteAmplification(), 3.0);
}

TEST(HybridFtlTest, SupersededCachePagesAreNotMigrated) {
  auto hybrid = MakeTinyHybrid();
  // Rewrite ONE page over and over: migrations should be far fewer than
  // writes (most copies die in the cache pipeline).
  for (int i = 0; i < 4096; ++i) {
    ASSERT_TRUE(hybrid->WritePage(0).ok());
  }
  EXPECT_LT(hybrid->mlc_pool().Stats().nand_pages_written, 4096u);
  EXPECT_TRUE(hybrid->ReadPage(0).ok());
}

}  // namespace
}  // namespace flashsim
