#include "src/wearlab/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/simcore/units.h"

namespace flashsim {
namespace {

TEST(TableReporterTest, PrintsHeaderAndRows) {
  TableReporter table({"A", "Bee"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("Bee"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableReporterTest, PadsShortRows) {
  TableReporter table({"A", "B", "C"});
  table.AddRow({"only-one"});
  std::ostringstream os;
  table.Print(os);  // must not crash; missing cells render empty
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(TableReporterTest, ColumnsAligned) {
  TableReporter table({"Name", "Value"});
  table.AddRow({"x", "1"});
  table.AddRow({"long-name", "2"});
  std::ostringstream os;
  table.Print(os);
  std::istringstream lines(os.str());
  std::string header;
  std::string separator;
  std::string row1;
  std::string row2;
  std::getline(lines, header);
  std::getline(lines, separator);
  std::getline(lines, row1);
  std::getline(lines, row2);
  // The "Value" column starts at the same offset in each row.
  EXPECT_EQ(row1.find('1'), row2.find('2'));
}

TEST(FormatHelpersTest, Fmt) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(3.14159, 0), "3");
  EXPECT_EQ(Fmt(-1.5, 1), "-1.5");
}

TEST(FormatHelpersTest, FmtGiB) {
  EXPECT_EQ(FmtGiB(uint64_t{2 * kGiB}), "2.00");
  EXPECT_EQ(FmtGiB(1.5 * static_cast<double>(kGiB), 1), "1.5");
}

TEST(FormatHelpersTest, FmtPercent) {
  EXPECT_EQ(FmtPercent(0.5), "50%");
  EXPECT_EQ(FmtPercent(0.905, 1), "90.5%");
}

}  // namespace
}  // namespace flashsim
