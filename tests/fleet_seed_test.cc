// DeriveDeviceSeed collision-freedom over a fleet-scale grid: 64 runs x 1M
// devices must yield 64M pairwise-distinct seeds. An exact check, not a
// birthday estimate: seeds are partitioned by their top bits and each
// partition is sorted and scanned, so memory stays bounded while every pair
// is compared.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/simcore/rng.h"

namespace flashsim {
namespace {

TEST(DeriveDeviceSeedTest, DistinctFromRunStreamSeeds) {
  // The fleet seed path must not alias the campaign runner's per-run
  // DeriveSeed(seed, index) stream for small indices, where collisions
  // would silently correlate a fleet device with a grid run.
  const uint64_t campaign_seed = 1103;
  std::vector<uint64_t> seeds;
  for (uint64_t i = 0; i < 4096; ++i) {
    seeds.push_back(DeriveSeed(campaign_seed, i));
  }
  for (uint64_t run = 0; run < 8; ++run) {
    for (uint64_t device = 0; device < 512; ++device) {
      seeds.push_back(DeriveDeviceSeed(campaign_seed, run, device));
    }
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(DeriveDeviceSeedTest, SensitiveToEveryArgument) {
  const uint64_t base = DeriveDeviceSeed(1, 2, 3);
  EXPECT_NE(base, DeriveDeviceSeed(2, 2, 3));
  EXPECT_NE(base, DeriveDeviceSeed(1, 3, 3));
  EXPECT_NE(base, DeriveDeviceSeed(1, 2, 4));
  // Argument transposition must not collide either.
  EXPECT_NE(DeriveDeviceSeed(1, 2, 3), DeriveDeviceSeed(1, 3, 2));
  // Deterministic.
  EXPECT_EQ(base, DeriveDeviceSeed(1, 2, 3));
}

TEST(DeriveDeviceSeedTest, NoCollisionsAcrossMillionDevice64RunGrid) {
  constexpr uint64_t kRuns = 64;
  constexpr uint64_t kDevices = 1000000;
  constexpr uint64_t campaign_seed = 0x5eedc0ffeeull;

  // 8 passes keyed on the seeds' top 3 bits: each pass holds ~kRuns *
  // kDevices / 8 entries (~64 MiB), and across passes every seed lands in
  // exactly one sorted scan.
  uint64_t total_checked = 0;
  for (uint64_t pass = 0; pass < 8; ++pass) {
    std::vector<uint64_t> bucket;
    bucket.reserve(kRuns * kDevices / 8 + kRuns * 1024);
    for (uint64_t run = 0; run < kRuns; ++run) {
      for (uint64_t device = 0; device < kDevices; ++device) {
        const uint64_t seed = DeriveDeviceSeed(campaign_seed, run, device);
        if ((seed >> 61) == pass) {
          bucket.push_back(seed);
        }
      }
    }
    std::sort(bucket.begin(), bucket.end());
    ASSERT_EQ(std::adjacent_find(bucket.begin(), bucket.end()), bucket.end())
        << "collision in partition " << pass;
    total_checked += bucket.size();
  }
  EXPECT_EQ(total_checked, kRuns * kDevices);
}

}  // namespace
}  // namespace flashsim
