#include "src/ftl/page_map_ftl.h"

#include <gtest/gtest.h>

#include <map>

#include "src/simcore/rng.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

TEST(PageMapFtlTest, LogicalCapacityReflectsOverProvisioning) {
  auto ftl = MakeTinyFtl();
  // 32 blocks - 4 spares = 28 usable; 10% OP -> floor(28*0.9)=25 blocks.
  EXPECT_EQ(ftl->LogicalPageCount(), 25u * 128);
  EXPECT_EQ(ftl->PageSizeBytes(), 4096u);
}

TEST(PageMapFtlTest, ReadUnwrittenIsNotFound) {
  auto ftl = MakeTinyFtl();
  EXPECT_EQ(ftl->ReadPage(0).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(ftl->IsMapped(0));
}

TEST(PageMapFtlTest, WriteReadRoundtrip) {
  auto ftl = MakeTinyFtl();
  ASSERT_TRUE(ftl->WritePage(5).ok());
  EXPECT_TRUE(ftl->IsMapped(5));
  EXPECT_TRUE(ftl->ReadPage(5).ok());
}

TEST(PageMapFtlTest, OutOfRangeLpnRejected) {
  auto ftl = MakeTinyFtl();
  const uint64_t beyond = ftl->LogicalPageCount();
  EXPECT_EQ(ftl->WritePage(beyond).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ftl->ReadPage(beyond).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ftl->TrimPage(beyond).code(), StatusCode::kOutOfRange);
}

TEST(PageMapFtlTest, TrimUnmapsPage) {
  auto ftl = MakeTinyFtl();
  ASSERT_TRUE(ftl->WritePage(3).ok());
  ASSERT_TRUE(ftl->TrimPage(3).ok());
  EXPECT_FALSE(ftl->IsMapped(3));
  EXPECT_EQ(ftl->ReadPage(3).status().code(), StatusCode::kNotFound);
  // Trimming an unmapped page is a no-op, not an error.
  EXPECT_TRUE(ftl->TrimPage(3).ok());
}

TEST(PageMapFtlTest, UtilizationTracksValidPages) {
  auto ftl = MakeTinyFtl();
  EXPECT_DOUBLE_EQ(ftl->Utilization(), 0.0);
  const uint64_t quarter = ftl->LogicalPageCount() / 4;
  for (uint64_t lpn = 0; lpn < quarter; ++lpn) {
    ASSERT_TRUE(ftl->WritePage(lpn).ok());
  }
  EXPECT_NEAR(ftl->Utilization(), 0.25, 0.01);
  // Rewriting the same pages must not change utilization.
  for (uint64_t lpn = 0; lpn < quarter; ++lpn) {
    ASSERT_TRUE(ftl->WritePage(lpn).ok());
  }
  EXPECT_NEAR(ftl->Utilization(), 0.25, 0.01);
}

TEST(PageMapFtlTest, StatsCountHostAndNandWrites) {
  auto ftl = MakeTinyFtl();
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(ftl->WritePage(i).ok());
  }
  const FtlStats s = ftl->Stats();
  EXPECT_EQ(s.host_pages_written, 100u);
  EXPECT_GE(s.nand_pages_written, 100u);
  EXPECT_GE(s.WriteAmplification(), 1.0);
  EXPECT_EQ(s.valid_pages, 100u);
}

TEST(PageMapFtlTest, WriteAmplificationOneWithoutPressure) {
  auto ftl = MakeTinyFtl();
  // Write well under capacity once: no GC, WA exactly 1.
  for (uint64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(ftl->WritePage(i).ok());
  }
  EXPECT_DOUBLE_EQ(ftl->Stats().WriteAmplification(), 1.0);
}

TEST(PageMapFtlTest, FillEntireLogicalSpace) {
  auto ftl = MakeTinyFtl();
  for (uint64_t lpn = 0; lpn < ftl->LogicalPageCount(); ++lpn) {
    ASSERT_TRUE(ftl->WritePage(lpn).ok()) << "lpn " << lpn;
  }
  EXPECT_NEAR(ftl->Utilization(), 1.0, 1e-9);
  // Sequential full rewrite invalidates whole blocks: background reclaim
  // keeps WA at exactly 1 even at 100% utilization.
  for (uint64_t lpn = 0; lpn < ftl->LogicalPageCount(); ++lpn) {
    ASSERT_TRUE(ftl->WritePage(lpn).ok()) << "rewrite lpn " << lpn;
  }
  EXPECT_DOUBLE_EQ(ftl->Stats().WriteAmplification(), 1.0);
  // Random rewrites at full utilization fragment the blocks, so GC must
  // migrate live pages: WA rises above 1.
  Rng rng(4321);
  for (uint64_t i = 0; i < 4 * ftl->LogicalPageCount(); ++i) {
    ASSERT_TRUE(ftl->WritePage(rng.UniformU64(ftl->LogicalPageCount())).ok());
  }
  EXPECT_GT(ftl->Stats().WriteAmplification(), 1.2);
}

TEST(PageMapFtlTest, MappingConsistencyUnderRandomRewrites) {
  // Shadow-model check: after arbitrary rewrites/trims, exactly the pages
  // the model says are live are mapped.
  auto ftl = MakeTinyFtl(99);
  Rng rng(1234);
  std::map<uint64_t, bool> shadow;
  const uint64_t logical = ftl->LogicalPageCount();
  for (int op = 0; op < 20000; ++op) {
    const uint64_t lpn = rng.UniformU64(logical);
    if (rng.Bernoulli(0.8)) {
      ASSERT_TRUE(ftl->WritePage(lpn).ok());
      shadow[lpn] = true;
    } else {
      ASSERT_TRUE(ftl->TrimPage(lpn).ok());
      shadow[lpn] = false;
    }
  }
  for (const auto& [lpn, live] : shadow) {
    EXPECT_EQ(ftl->IsMapped(lpn), live) << "lpn " << lpn;
  }
}

TEST(PageMapFtlTest, GcReclaimsInvalidatedSpace) {
  auto ftl = MakeTinyFtl();
  // Hammer a small set of pages far beyond physical capacity: only GC can
  // make this succeed.
  for (int round = 0; round < 200; ++round) {
    for (uint64_t lpn = 0; lpn < 64; ++lpn) {
      ASSERT_TRUE(ftl->WritePage(lpn).ok()) << "round " << round;
    }
  }
  EXPECT_EQ(ftl->Stats().valid_pages, 64u);
  EXPECT_GE(ftl->free_block_count(), ftl->config().gc_free_block_watermark - 1);
}

TEST(PageMapFtlTest, WearLevelingBoundsSpread) {
  auto ftl = MakeTinyFtl();
  // Skewed workload: a cold set pinning most of the device, plus a hot set.
  for (uint64_t lpn = 64; lpn < ftl->LogicalPageCount(); ++lpn) {
    ASSERT_TRUE(ftl->WritePage(lpn).ok());
  }
  for (int round = 0; round < 400; ++round) {
    for (uint64_t lpn = 0; lpn < 32; ++lpn) {
      ASSERT_TRUE(ftl->WritePage(lpn).ok());
    }
  }
  const WearSummary wear = ftl->chip().ComputeWearSummary();
  // Dynamic + static wear leveling must keep the P/E spread within a few
  // multiples of the configured threshold.
  EXPECT_LE(wear.max_pe - wear.min_pe, 4 * ftl->config().wear_level_threshold)
      << "min=" << wear.min_pe << " max=" << wear.max_pe;
}

TEST(PageMapFtlTest, WearLevelingDisabledAllowsSpread) {
  NandChipConfig nand = TinyChipConfig();
  nand.rated_pe_cycles = 100000;  // keep failures out of this test
  FtlConfig cfg = TinyFtlConfig();
  cfg.wear_level_threshold = 0;  // static WL off
  cfg.health_rated_pe = 100000;
  PageMapFtl ftl(nand, cfg, 1);
  // Cold data pins most of the device; dynamic WL alone cannot touch it.
  const uint64_t logical = ftl.LogicalPageCount();
  for (uint64_t lpn = 64; lpn < logical; ++lpn) {
    ASSERT_TRUE(ftl.WritePage(lpn).ok());
  }
  for (int round = 0; round < 400; ++round) {
    for (uint64_t lpn = 0; lpn < 32; ++lpn) {
      ASSERT_TRUE(ftl.WritePage(lpn).ok());
    }
  }
  const WearSummary wear = ftl.chip().ComputeWearSummary();
  // Without static WL the cold blocks stay cold while the hot set spins.
  EXPECT_EQ(wear.min_pe, 0u);
  EXPECT_GT(wear.max_pe, 8u);
}

TEST(PageMapFtlTest, HealthAdvancesWithWear) {
  auto ftl = MakeTinyFtl();
  EXPECT_EQ(ftl->Health().life_time_est_a, 1u);
  EXPECT_EQ(ftl->Health().life_time_est_b, 0u);  // single pool
  // ~15 full-device rewrites at health_rated_pe=100 => ~15% life => level 2.
  const uint64_t logical = ftl->LogicalPageCount();
  for (int round = 0; round < 17; ++round) {
    for (uint64_t lpn = 0; lpn < logical; ++lpn) {
      ASSERT_TRUE(ftl->WritePage(lpn).ok());
    }
  }
  EXPECT_GE(ftl->Health().life_time_est_a, 2u);
  EXPECT_EQ(ftl->Health().pre_eol, PreEolInfo::kNormal);
}

TEST(PageMapFtlTest, DeviceBricksAtEndOfLife) {
  NandChipConfig nand = TinyChipConfig();
  nand.rated_pe_cycles = 30;   // die fast
  nand.failure_ceiling = 0.3;  // and decisively
  FtlConfig cfg = TinyFtlConfig();
  cfg.health_rated_pe = 15;
  PageMapFtl ftl(nand, cfg, 7);
  Status last = Status::Ok();
  for (uint64_t i = 0; i < 50u * 1000 * 1000 && last.ok(); ++i) {
    last = ftl.WritePage(i % 64).status();
  }
  EXPECT_EQ(last.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(ftl.IsReadOnly());
  // Once read-only, everything write-ish fails, reads of intact data work.
  EXPECT_EQ(ftl.WritePage(0).status().code(), StatusCode::kUnavailable);
  const HealthReport health = ftl.Health();
  EXPECT_EQ(health.pre_eol, PreEolInfo::kUrgent);
  EXPECT_GE(health.life_time_est_a, 11u);
}

TEST(PageMapFtlTest, WriteTimeIncludesGcWork) {
  auto ftl = MakeTinyFtl();
  // First pass: no GC.
  Result<SimDuration> first = ftl->WritePage(0);
  ASSERT_TRUE(first.ok());
  // Fill the device and keep rewriting: some writes must carry GC time.
  SimDuration max_seen;
  for (int round = 0; round < 60; ++round) {
    for (uint64_t lpn = 0; lpn < ftl->LogicalPageCount(); lpn += 1) {
      Result<SimDuration> w = ftl->WritePage(lpn);
      ASSERT_TRUE(w.ok());
      if (w.value() > max_seen) {
        max_seen = w.value();
      }
    }
  }
  EXPECT_GT(max_seen, first.value() * 2);
}

TEST(PageMapFtlTest, InternalWritesNotCountedAsHost) {
  auto ftl = MakeTinyFtl();
  ASSERT_TRUE(ftl->WritePageInternal(1, /*count_as_host=*/false).ok());
  EXPECT_EQ(ftl->Stats().host_pages_written, 0u);
  EXPECT_EQ(ftl->Stats().nand_pages_written, 1u);
  EXPECT_TRUE(ftl->IsMapped(1));
}

TEST(PageMapFtlTest, GcPolicyCostBenefitAlsoWorks) {
  NandChipConfig nand = TinyChipConfig();
  FtlConfig cfg = TinyFtlConfig();
  cfg.gc_policy = GcPolicy::kCostBenefit;
  PageMapFtl ftl(nand, cfg, 3);
  for (int round = 0; round < 100; ++round) {
    for (uint64_t lpn = 0; lpn < 128; ++lpn) {
      ASSERT_TRUE(ftl.WritePage(lpn).ok());
    }
  }
  EXPECT_EQ(ftl.Stats().valid_pages, 128u);
}

}  // namespace
}  // namespace flashsim
