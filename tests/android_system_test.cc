#include "src/android/android_system.h"

#include <gtest/gtest.h>

#include "src/android/attack_app.h"
#include "src/fs/extfs.h"
#include "src/simcore/units.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

class AndroidSystemTest : public ::testing::Test {
 protected:
  AndroidSystemTest()
      : device_(MakeDurableDevice()), fs_(*device_), system_(fs_) {}
  std::unique_ptr<FlashDevice> device_;
  ExtFs fs_;
  AndroidSystem system_;
};

TEST_F(AndroidSystemTest, SandboxPathsPerApp) {
  EXPECT_EQ(AndroidSystem::SandboxPath(5, "a.dat"), "data/app5/a.dat");
  EXPECT_NE(AndroidSystem::SandboxPath(5, "a.dat"), AndroidSystem::SandboxPath(6, "a.dat"));
}

TEST_F(AndroidSystemTest, AppIoFlowsThroughSandbox) {
  ASSERT_TRUE(system_.AppCreate(1, "f").ok());
  ASSERT_TRUE(system_.AppWrite(1, "f", 0, 4096, true).ok());
  EXPECT_TRUE(fs_.Exists("data/app1/f"));
  ASSERT_TRUE(system_.AppRead(1, "f", 0, 4096).ok());
  ASSERT_TRUE(system_.AppUnlink(1, "f").ok());
  EXPECT_FALSE(fs_.Exists("data/app1/f"));
}

TEST_F(AndroidSystemTest, AccountantSeesAppIo) {
  ASSERT_TRUE(system_.AppCreate(3, "f").ok());
  ASSERT_TRUE(system_.AppWrite(3, "f", 0, 8192, false).ok());
  ASSERT_TRUE(system_.AppRead(3, "f", 0, 4096).ok());
  EXPECT_EQ(system_.accountant().Usage(3).bytes_written, 8192u);
  EXPECT_EQ(system_.accountant().Usage(3).bytes_read, 4096u);
}

TEST_F(AndroidSystemTest, ClockAdvancesWithIoAndIdle) {
  const SimTime t0 = system_.Now();
  ASSERT_TRUE(system_.AppCreate(1, "f").ok());
  ASSERT_TRUE(system_.AppWrite(1, "f", 0, 1024 * 1024, true).ok());
  const SimTime t1 = system_.Now();
  EXPECT_GT(t1, t0);
  system_.AdvanceIdle(SimDuration::Hours(2));
  EXPECT_EQ((system_.Now() - t1).nanos(), SimDuration::Hours(2).nanos());
}

TEST_F(AndroidSystemTest, StateFollowsSchedule) {
  EXPECT_TRUE(system_.StateNow().charging);  // midnight
  system_.AdvanceIdle(SimDuration::Hours(12));
  EXPECT_FALSE(system_.StateNow().charging);  // noon
}

TEST_F(AndroidSystemTest, DetectionSummaryForQuietApp) {
  const DetectionSummary d = system_.Detection(1);
  EXPECT_FALSE(d.power_flagged);
  EXPECT_FALSE(d.process_flagged);
  EXPECT_EQ(d.process_samples_caught, 0u);
}

TEST_F(AndroidSystemTest, RateLimiterEnforced) {
  AndroidSystemConfig cfg;
  cfg.enable_rate_limiter = true;
  cfg.rate_limiter.burst_bytes = 64 * 1024;
  cfg.rate_limiter.target_lifetime_days = 10000.0;
  AndroidSystem limited(fs_, cfg);
  EXPECT_TRUE(limited.rate_limiter_enabled());
  ASSERT_TRUE(limited.AppCreate(1, "f").ok());
  ASSERT_TRUE(limited.AppWrite(1, "f", 0, 64 * 1024, false).ok());
  // Bucket drained: the next write must stall the app (idle time passes).
  const SimTime before = limited.Now();
  ASSERT_TRUE(limited.AppWrite(1, "f", 0, 64 * 1024, false).ok());
  EXPECT_GT((limited.Now() - before).ToSecondsF(), 1.0);
}

TEST_F(AndroidSystemTest, WearServicePolling) {
  system_.PollWearIndicator();
  EXPECT_EQ(system_.wear_service().last_seen_level(), 1u);
}

TEST(AttackAppTest, InstallCreatesFiles) {
  auto device = MakeDurableDevice();
  ExtFs fs(*device);
  AndroidSystem system(fs);
  AttackAppConfig cfg;
  cfg.file_count = 2;
  cfg.file_bytes = 1 * kMiB;
  WearAttackApp app(system, cfg);
  ASSERT_TRUE(app.Install().ok());
  EXPECT_TRUE(fs.Exists("data/app100/wear0.dat"));
  EXPECT_TRUE(fs.Exists("data/app100/wear1.dat"));
  EXPECT_EQ(fs.FileSize("data/app100/wear0.dat").value(), 1 * kMiB);
}

TEST(AttackAppTest, RunWithoutInstallFails) {
  auto device = MakeDurableDevice();
  ExtFs fs(*device);
  AndroidSystem system(fs);
  WearAttackApp app(system, AttackAppConfig{});
  const AttackProgress p = app.RunUntil(system.Now() + SimDuration::Seconds(1));
  EXPECT_EQ(p.last_error.code(), StatusCode::kFailedPrecondition);
}

TEST(AttackAppTest, AggressivePolicyWritesContinuously) {
  auto device = MakeDurableDevice();
  ExtFs fs(*device);
  AndroidSystem system(fs);
  AttackAppConfig cfg;
  cfg.file_count = 2;
  cfg.file_bytes = 1 * kMiB;
  WearAttackApp app(system, cfg);
  ASSERT_TRUE(app.Install().ok());
  const AttackProgress p = app.RunUntil(system.Now() + SimDuration::Seconds(10));
  EXPECT_GT(p.bytes_written, 10u * kMiB);  // >1 MiB/s on any device here
  EXPECT_EQ(p.idle_skips, 0u);
  EXPECT_FALSE(p.device_bricked);
}

TEST(AttackAppTest, StealthPolicySleepsOffWindow) {
  auto device = MakeDurableDevice();
  ExtFs fs(*device);
  AndroidSystem system(fs);
  // Move to noon: not charging -> stealth app must not write.
  system.AdvanceIdle(SimDuration::Hours(12));
  AttackAppConfig cfg;
  cfg.file_count = 1;
  cfg.file_bytes = 1 * kMiB;
  cfg.policy = AttackPolicy::kStealth;
  WearAttackApp app(system, cfg);
  ASSERT_TRUE(app.Install().ok());
  const AttackProgress p = app.RunUntil(system.Now() + SimDuration::Hours(2));
  EXPECT_EQ(p.bytes_written, 0u);
  EXPECT_GT(p.idle_skips, 0u);
}

TEST(AttackAppTest, StealthPolicyWritesInWindow) {
  auto device = MakeDurableDevice();
  ExtFs fs(*device);
  AndroidSystem system(fs);
  // Midnight: charging, screen off -> stealth window open.
  AttackAppConfig cfg;
  cfg.file_count = 1;
  cfg.file_bytes = 1 * kMiB;
  cfg.policy = AttackPolicy::kStealth;
  WearAttackApp app(system, cfg);
  ASSERT_TRUE(app.Install().ok());
  const AttackProgress p = app.RunUntil(system.Now() + SimDuration::Minutes(5));
  EXPECT_GT(p.bytes_written, 0u);
}

TEST(AttackAppTest, BricksTinyDevice) {
  auto device = MakeTinyDevice(5);  // rated 200 cycles; dies quickly
  ExtFs fs(*device);
  AndroidSystem system(fs);
  AttackAppConfig cfg;
  cfg.file_count = 1;
  cfg.file_bytes = 1 * kMiB;
  cfg.write_bytes = 64 * 1024;  // fast wear
  WearAttackApp app(system, cfg);
  ASSERT_TRUE(app.Install().ok());
  const AttackProgress p = app.RunUntilBricked(SimDuration::Hours(1000));
  EXPECT_TRUE(p.device_bricked);
  EXPECT_TRUE(device->IsReadOnly());
  EXPECT_EQ(p.last_error.code(), StatusCode::kUnavailable);
}

TEST(AttackAppTest, PolicyNames) {
  EXPECT_STREQ(AttackPolicyName(AttackPolicy::kAggressive), "aggressive");
  EXPECT_STREQ(AttackPolicyName(AttackPolicy::kStealth), "stealth");
}

}  // namespace
}  // namespace flashsim
