#include <gtest/gtest.h>

#include "src/simcore/clock.h"
#include "src/simcore/sim_time.h"

namespace flashsim {
namespace {

TEST(SimDurationTest, FactoryUnits) {
  EXPECT_EQ(SimDuration::Nanos(5).nanos(), 5);
  EXPECT_EQ(SimDuration::Micros(2).nanos(), 2000);
  EXPECT_EQ(SimDuration::Millis(2).nanos(), 2000000);
  EXPECT_EQ(SimDuration::Seconds(1).nanos(), 1000000000);
  EXPECT_EQ(SimDuration::Minutes(1).nanos(), 60ll * 1000000000);
  EXPECT_EQ(SimDuration::Hours(1).nanos(), 3600ll * 1000000000);
}

TEST(SimDurationTest, Arithmetic) {
  const SimDuration a = SimDuration::Micros(3);
  const SimDuration b = SimDuration::Micros(2);
  EXPECT_EQ((a + b).nanos(), 5000);
  EXPECT_EQ((a - b).nanos(), 1000);
  EXPECT_EQ((a * 4).nanos(), 12000);
  SimDuration c = a;
  c += b;
  EXPECT_EQ(c.nanos(), 5000);
}

TEST(SimDurationTest, Comparisons) {
  EXPECT_LT(SimDuration::Micros(1), SimDuration::Micros(2));
  EXPECT_EQ(SimDuration::Millis(1), SimDuration::Micros(1000));
}

TEST(SimDurationTest, FractionalConversions) {
  EXPECT_DOUBLE_EQ(SimDuration::Seconds(2).ToSecondsF(), 2.0);
  EXPECT_DOUBLE_EQ(SimDuration::Hours(3).ToHoursF(), 3.0);
  EXPECT_EQ(SimDuration::FromSecondsF(1.5).nanos(), 1500000000);
}

TEST(SimTimeTest, InstantArithmetic) {
  SimTime t;
  EXPECT_EQ(t.nanos(), 0);
  t += SimDuration::Seconds(2);
  EXPECT_EQ(t.ToSecondsF(), 2.0);
  const SimTime later = t + SimDuration::Seconds(3);
  EXPECT_EQ((later - t).nanos(), SimDuration::Seconds(3).nanos());
  EXPECT_LT(t, later);
}

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.Now().nanos(), 0);
  clock.Advance(SimDuration::Micros(10));
  clock.Advance(SimDuration::Micros(5));
  EXPECT_EQ(clock.Now().nanos(), 15000);
}

TEST(SimClockTest, CategoryAccounting) {
  SimClock clock;
  clock.AdvanceWithCategory(SimDuration::Micros(7), "write");
  clock.AdvanceWithCategory(SimDuration::Micros(3), "write");
  clock.AdvanceWithCategory(SimDuration::Micros(2), "read");
  EXPECT_EQ(clock.CategoryTotal("write").nanos(), 10000);
  EXPECT_EQ(clock.CategoryTotal("read").nanos(), 2000);
  EXPECT_EQ(clock.CategoryTotal("missing").nanos(), 0);
  EXPECT_EQ(clock.Now().nanos(), 12000);
}

TEST(SimClockTest, ResetClearsEverything) {
  SimClock clock;
  clock.AdvanceWithCategory(SimDuration::Micros(7), "x");
  clock.Reset();
  EXPECT_EQ(clock.Now().nanos(), 0);
  EXPECT_EQ(clock.CategoryTotal("x").nanos(), 0);
}

}  // namespace
}  // namespace flashsim
