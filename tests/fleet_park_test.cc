// Parked-state codec properties: zero-run packing round-trips arbitrary
// byte strings, rejects corrupted input, and keeps a worn catalog device's
// parked footprint within the per-device byte budget the fleet subsystem
// commits to (ISSUE: memory proportional to active devices only).

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/campaign/spec.h"
#include "src/device/flash_device.h"
#include "src/fleet/park.h"
#include "src/simcore/rng.h"
#include "src/simcore/snapshot.h"
#include "src/simcore/units.h"

namespace flashsim {
namespace {

std::vector<uint8_t> RoundTrip(const std::vector<uint8_t>& raw) {
  const std::vector<uint8_t> packed = PackZeroRuns(raw);
  std::vector<uint8_t> out;
  EXPECT_TRUE(UnpackZeroRuns(packed, &out).ok());
  return out;
}

TEST(ParkCodecTest, RoundTripsEdgeCases) {
  EXPECT_EQ(RoundTrip({}), std::vector<uint8_t>{});
  EXPECT_EQ(RoundTrip({0}), std::vector<uint8_t>{0});
  EXPECT_EQ(RoundTrip({7}), std::vector<uint8_t>{7});

  const std::vector<uint8_t> all_zero(1000, 0);
  EXPECT_EQ(RoundTrip(all_zero), all_zero);

  std::vector<uint8_t> no_zero(1000);
  for (size_t i = 0; i < no_zero.size(); ++i) {
    no_zero[i] = static_cast<uint8_t>(1 + (i % 255));
  }
  EXPECT_EQ(RoundTrip(no_zero), no_zero);

  // Zero runs shorter than the literal threshold stay inside literals.
  const std::vector<uint8_t> short_runs = {1, 0, 0, 2, 0, 0, 0, 3};
  EXPECT_EQ(RoundTrip(short_runs), short_runs);

  // Trailing zero run and trailing literal both round-trip.
  std::vector<uint8_t> trailing_zeros = {9, 9, 9};
  trailing_zeros.resize(100, 0);
  EXPECT_EQ(RoundTrip(trailing_zeros), trailing_zeros);
  std::vector<uint8_t> trailing_literal(100, 0);
  trailing_literal.push_back(42);
  EXPECT_EQ(RoundTrip(trailing_literal), trailing_literal);
}

TEST(ParkCodecTest, RoundTripsRandomMixtures) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> raw;
    const size_t segments = 1 + rng() % 20;
    for (size_t s = 0; s < segments; ++s) {
      const size_t len = rng() % 200;
      const bool zeros = (rng() & 1) != 0;
      for (size_t i = 0; i < len; ++i) {
        raw.push_back(zeros ? 0 : static_cast<uint8_t>(rng()));
      }
    }
    EXPECT_EQ(RoundTrip(raw), raw) << "trial " << trial;
  }
}

TEST(ParkCodecTest, CompressesZeroHeavyInput) {
  std::vector<uint8_t> raw(64 * 1024, 0);
  for (size_t i = 0; i < raw.size(); i += 1024) {
    raw[i] = 0xff;
  }
  const std::vector<uint8_t> packed = PackZeroRuns(raw);
  EXPECT_LT(packed.size(), raw.size() / 10);
}

TEST(ParkCodecTest, RejectsCorruptedInput) {
  std::vector<uint8_t> out;
  // Truncated header.
  EXPECT_FALSE(UnpackZeroRuns({0x01}, &out).ok());

  std::vector<uint8_t> raw(500, 1);
  raw[100] = 0;
  std::vector<uint8_t> packed = PackZeroRuns(raw);
  // Truncated payload.
  std::vector<uint8_t> truncated(packed.begin(), packed.end() - 3);
  EXPECT_FALSE(UnpackZeroRuns(truncated, &out).ok());
  // Size-prefix mismatch.
  packed[0] ^= 0x7f;
  EXPECT_FALSE(UnpackZeroRuns(packed, &out).ok());
}

// Satellite: parked-state byte budget for a worn, capacity/endurance-scaled
// eMMC 8GB. The fleet runner parks every idle device as one packed snapshot
// blob; these budgets are what make "100k devices in <64 MiB above baseline"
// arithmetic work (active shards only: 64 devices/shard x ~128 KiB/device).
// Measured on the seed implementation: ~169 KiB raw, ~105 KiB packed for a
// fully-worn device — the budget leaves ~50% headroom before it fails.
TEST(ParkBudgetTest, WornScaledEmmc8SnapshotStaysWithinBudget) {
  const CampaignDevice* entry = FindCampaignDevice("emmc8");
  ASSERT_NE(entry, nullptr);
  const SimScale scale{256, 256};
  std::unique_ptr<FlashDevice> device = entry->make(scale, 0x5eedu);

  // Wear the device with several full overwrites of random 4 KiB writes
  // (the attack pattern), leaving a realistically fragmented FTL.
  const uint64_t capacity = device->CapacityBytes();
  std::mt19937_64 rng(99);
  const uint64_t request = 4 * kKiB;
  const uint64_t to_write = 4 * capacity;
  uint64_t written = 0;
  while (written < to_write) {
    const uint64_t slot = rng() % (capacity / request);
    const IoRequest req{IoKind::kWrite, slot * request, request};
    Result<IoCompletion> done = device->Submit(req);
    if (!done.ok()) {
      break;  // bricked: still a valid "worn" device to snapshot
    }
    written += request;
  }
  ASSERT_GT(written, capacity);

  SnapshotWriter w;
  device->SaveState(w);
  const std::vector<uint8_t> packed = PackZeroRuns(w.buffer());

  constexpr size_t kRawBudget = 256 * 1024;
  constexpr size_t kPackedBudget = 160 * 1024;
  EXPECT_LE(w.buffer().size(), kRawBudget)
      << "raw snapshot " << w.buffer().size() << " bytes";
  EXPECT_LE(packed.size(), kPackedBudget)
      << "packed snapshot " << packed.size() << " bytes";

  // And the packed form must actually round-trip to the same device state.
  std::vector<uint8_t> raw;
  ASSERT_TRUE(UnpackZeroRuns(packed, &raw).ok());
  EXPECT_EQ(raw, w.buffer());
}

TEST(ParkBlobTest, FullBlobRoundTripsWithAndWithoutTranspose) {
  std::mt19937_64 rng(31);
  ParkScratch scratch;
  for (const size_t size : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                            size_t{9}, size_t{1000}, size_t{64 * 1024 + 3}}) {
    std::vector<uint8_t> raw(size);
    for (size_t i = 0; i < size; ++i) {
      // Wear-plane-like content: mostly small values with zero high bytes.
      raw[i] = (i % 8 < 2) ? static_cast<uint8_t>(rng()) : 0;
    }
    for (const bool transpose : {false, true}) {
      std::vector<uint8_t> blob;
      ParkPackFull(raw, transpose, &scratch, &blob);
      ASSERT_FALSE(blob.empty());
      EXPECT_EQ(blob[0], transpose ? kParkFullT8 : kParkFull);
      std::vector<uint8_t> back;
      ASSERT_TRUE(ParkUnpackFull(blob, &scratch, &back).ok());
      EXPECT_EQ(back, raw) << "size " << size << " transpose " << transpose;
    }
  }
}

TEST(ParkBlobTest, DeltaRoundTripsAgainstBase) {
  std::mt19937_64 rng(47);
  ParkScratch scratch;
  std::vector<uint8_t> base(48 * 1024);
  for (auto& b : base) {
    b = (rng() % 4 == 0) ? static_cast<uint8_t>(rng()) : 0;
  }
  // Current snapshot: the base with a sparse set of low-byte edits, plus a
  // grown tail (snapshots can change size slice-to-slice).
  std::vector<uint8_t> cur = base;
  for (int i = 0; i < 200; ++i) {
    cur[(rng() % (cur.size() / 8)) * 8] ^= static_cast<uint8_t>(1 + rng() % 255);
  }
  cur.resize(cur.size() + 1234, 0x5a);

  std::vector<uint8_t> blob;
  ParkPackDelta(cur, base, &scratch, &blob);
  ASSERT_FALSE(blob.empty());
  EXPECT_EQ(blob[0], kParkDelta);
  // Sparse deltas pack far below the full snapshot.
  std::vector<uint8_t> full_blob;
  ParkPackFull(cur, /*transpose=*/true, &scratch, &full_blob);
  EXPECT_LT(blob.size(), full_blob.size());

  std::vector<uint8_t> reconstructed = base;
  ASSERT_TRUE(ParkApplyDelta(blob, &scratch, &reconstructed).ok());
  EXPECT_EQ(reconstructed, cur);

  // A shrinking snapshot round-trips too.
  std::vector<uint8_t> smaller(cur.begin(), cur.begin() + 10000);
  ParkPackDelta(smaller, cur, &scratch, &blob);
  std::vector<uint8_t> back = cur;
  ASSERT_TRUE(ParkApplyDelta(blob, &scratch, &back).ok());
  EXPECT_EQ(back, smaller);
}

TEST(ParkBlobTest, UnpackChainMatchesPerLinkApply) {
  std::mt19937_64 rng(53);
  ParkScratch scratch;
  std::vector<uint8_t> raw(32 * 1024);
  for (size_t i = 0; i < raw.size(); ++i) {
    raw[i] = (i % 8 == 0) ? static_cast<uint8_t>(rng()) : 0;
  }
  std::vector<uint8_t> base_blob;
  ParkPackFull(raw, /*transpose=*/true, &scratch, &base_blob);

  // A chain of sparse edits, with one mid-chain resize to force the
  // fused fast path to hand off to the per-link fallback.
  std::vector<std::vector<uint8_t>> chain;
  std::vector<uint8_t> prev = raw;
  std::vector<uint8_t> cur = raw;
  for (int link = 0; link < 6; ++link) {
    for (int e = 0; e < 40; ++e) {
      cur[rng() % cur.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
    }
    if (link == 3) {
      cur.resize(cur.size() + 777, 0x3c);  // snapshot grew this slice
    }
    std::vector<uint8_t> delta;
    ParkPackDelta(cur, prev, &scratch, &delta);
    chain.push_back(std::move(delta));
    prev = cur;
  }

  // Reference: unpack the base, apply each link.
  std::vector<uint8_t> reference;
  ASSERT_TRUE(ParkUnpackFull(base_blob, &scratch, &reference).ok());
  for (const std::vector<uint8_t>& delta : chain) {
    ASSERT_TRUE(ParkApplyDelta(delta, &scratch, &reference).ok());
  }
  EXPECT_EQ(reference, cur);

  std::vector<uint8_t> fused;
  ASSERT_TRUE(ParkUnpackChain(base_blob, chain, &scratch, &fused).ok());
  EXPECT_EQ(fused, cur);

  // The chain also folds onto an untransposed (checkpoint-canonical) base.
  std::vector<uint8_t> plain_base;
  ParkPackFull(raw, /*transpose=*/false, &scratch, &plain_base);
  std::vector<uint8_t> from_plain;
  ASSERT_TRUE(ParkUnpackChain(plain_base, chain, &scratch, &from_plain).ok());
  EXPECT_EQ(from_plain, cur);
}

TEST(ParkBlobTest, RejectsHugeClaimedSizeWithoutAllocating) {
  // A corrupt varint size header claiming ~2^62 bytes must be rejected as
  // data loss before any allocation is attempted (ASan would abort on the
  // reserve otherwise, and production would OOM).
  std::vector<uint8_t> evil = {0xff, 0xff, 0xff, 0xff, 0xff,
                               0xff, 0xff, 0xff, 0x3f};
  std::vector<uint8_t> out;
  const Status st = UnpackZeroRuns(evil, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);

  std::vector<uint8_t> evil_blob = evil;
  evil_blob.insert(evil_blob.begin(), kParkFull);
  ParkScratch scratch;
  std::vector<uint8_t> raw;
  EXPECT_FALSE(ParkUnpackFull(evil_blob, &scratch, &raw).ok());
  evil_blob[0] = kParkDelta;
  EXPECT_FALSE(ParkApplyDelta(evil_blob, &scratch, &raw).ok());
}

// Satellite: decode fuzz. Every mutation of a valid blob either decodes
// (some flips hit literal payload bytes and change content but not
// structure) or fails with a clean DataLossError — never UB, never a crash,
// never an unbounded allocation. Run under ASan/UBSan in CI via the regular
// test suite.
TEST(ParkFuzzTest, CorruptedAndTruncatedBlobsFailCleanly) {
  std::mt19937_64 rng(0xf22);
  ParkScratch scratch;
  std::vector<uint8_t> raw(4096);
  for (size_t i = 0; i < raw.size(); ++i) {
    raw[i] = (i / 64) % 3 == 0 ? static_cast<uint8_t>(rng()) : 0;
  }
  std::vector<uint8_t> base = raw;
  base.front() ^= 0x11;
  base.back() ^= 0x22;

  std::vector<uint8_t> full;
  std::vector<uint8_t> delta;
  ParkPackFull(raw, /*transpose=*/true, &scratch, &full);
  ParkPackDelta(raw, base, &scratch, &delta);

  auto check_decode = [&](const std::vector<uint8_t>& blob) {
    std::vector<uint8_t> out;
    if (!blob.empty() && blob[0] == kParkDelta) {
      out = base;
      const Status st = ParkApplyDelta(blob, &scratch, &out);
      if (!st.ok()) {
        EXPECT_EQ(st.code(), StatusCode::kDataLoss);
      }
    } else {
      const Status st = ParkUnpackFull(blob, &scratch, &out);
      if (!st.ok()) {
        const bool clean = st.code() == StatusCode::kDataLoss ||
                           st.code() == StatusCode::kInvalidArgument;
        EXPECT_TRUE(clean) << st.ToString();
      }
    }
  };

  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> blob = (trial & 1) ? delta : full;
    switch (trial % 4) {
      case 0: {  // single byte flip
        blob[rng() % blob.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
        break;
      }
      case 1: {  // truncate
        blob.resize(rng() % (blob.size() + 1));
        break;
      }
      case 2: {  // append garbage
        const size_t extra = 1 + rng() % 16;
        for (size_t i = 0; i < extra; ++i) {
          blob.push_back(static_cast<uint8_t>(rng()));
        }
        break;
      }
      default: {  // burst of flips
        for (int k = 0; k < 8; ++k) {
          blob[rng() % blob.size()] ^= static_cast<uint8_t>(rng());
        }
        break;
      }
    }
    check_decode(blob);
  }

  // Pure-garbage inputs of every small size.
  for (size_t size = 0; size < 64; ++size) {
    std::vector<uint8_t> garbage(size);
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng());
    }
    check_decode(garbage);
  }
}

}  // namespace
}  // namespace flashsim
