// Parked-state codec properties: zero-run packing round-trips arbitrary
// byte strings, rejects corrupted input, and keeps a worn catalog device's
// parked footprint within the per-device byte budget the fleet subsystem
// commits to (ISSUE: memory proportional to active devices only).

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/campaign/spec.h"
#include "src/device/flash_device.h"
#include "src/fleet/park.h"
#include "src/simcore/rng.h"
#include "src/simcore/snapshot.h"
#include "src/simcore/units.h"

namespace flashsim {
namespace {

std::vector<uint8_t> RoundTrip(const std::vector<uint8_t>& raw) {
  const std::vector<uint8_t> packed = PackZeroRuns(raw);
  std::vector<uint8_t> out;
  EXPECT_TRUE(UnpackZeroRuns(packed, &out).ok());
  return out;
}

TEST(ParkCodecTest, RoundTripsEdgeCases) {
  EXPECT_EQ(RoundTrip({}), std::vector<uint8_t>{});
  EXPECT_EQ(RoundTrip({0}), std::vector<uint8_t>{0});
  EXPECT_EQ(RoundTrip({7}), std::vector<uint8_t>{7});

  const std::vector<uint8_t> all_zero(1000, 0);
  EXPECT_EQ(RoundTrip(all_zero), all_zero);

  std::vector<uint8_t> no_zero(1000);
  for (size_t i = 0; i < no_zero.size(); ++i) {
    no_zero[i] = static_cast<uint8_t>(1 + (i % 255));
  }
  EXPECT_EQ(RoundTrip(no_zero), no_zero);

  // Zero runs shorter than the literal threshold stay inside literals.
  const std::vector<uint8_t> short_runs = {1, 0, 0, 2, 0, 0, 0, 3};
  EXPECT_EQ(RoundTrip(short_runs), short_runs);

  // Trailing zero run and trailing literal both round-trip.
  std::vector<uint8_t> trailing_zeros = {9, 9, 9};
  trailing_zeros.resize(100, 0);
  EXPECT_EQ(RoundTrip(trailing_zeros), trailing_zeros);
  std::vector<uint8_t> trailing_literal(100, 0);
  trailing_literal.push_back(42);
  EXPECT_EQ(RoundTrip(trailing_literal), trailing_literal);
}

TEST(ParkCodecTest, RoundTripsRandomMixtures) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> raw;
    const size_t segments = 1 + rng() % 20;
    for (size_t s = 0; s < segments; ++s) {
      const size_t len = rng() % 200;
      const bool zeros = (rng() & 1) != 0;
      for (size_t i = 0; i < len; ++i) {
        raw.push_back(zeros ? 0 : static_cast<uint8_t>(rng()));
      }
    }
    EXPECT_EQ(RoundTrip(raw), raw) << "trial " << trial;
  }
}

TEST(ParkCodecTest, CompressesZeroHeavyInput) {
  std::vector<uint8_t> raw(64 * 1024, 0);
  for (size_t i = 0; i < raw.size(); i += 1024) {
    raw[i] = 0xff;
  }
  const std::vector<uint8_t> packed = PackZeroRuns(raw);
  EXPECT_LT(packed.size(), raw.size() / 10);
}

TEST(ParkCodecTest, RejectsCorruptedInput) {
  std::vector<uint8_t> out;
  // Truncated header.
  EXPECT_FALSE(UnpackZeroRuns({0x01}, &out).ok());

  std::vector<uint8_t> raw(500, 1);
  raw[100] = 0;
  std::vector<uint8_t> packed = PackZeroRuns(raw);
  // Truncated payload.
  std::vector<uint8_t> truncated(packed.begin(), packed.end() - 3);
  EXPECT_FALSE(UnpackZeroRuns(truncated, &out).ok());
  // Size-prefix mismatch.
  packed[0] ^= 0x7f;
  EXPECT_FALSE(UnpackZeroRuns(packed, &out).ok());
}

// Satellite: parked-state byte budget for a worn, capacity/endurance-scaled
// eMMC 8GB. The fleet runner parks every idle device as one packed snapshot
// blob; these budgets are what make "100k devices in <64 MiB above baseline"
// arithmetic work (active shards only: 64 devices/shard x ~128 KiB/device).
// Measured on the seed implementation: ~169 KiB raw, ~105 KiB packed for a
// fully-worn device — the budget leaves ~50% headroom before it fails.
TEST(ParkBudgetTest, WornScaledEmmc8SnapshotStaysWithinBudget) {
  const CampaignDevice* entry = FindCampaignDevice("emmc8");
  ASSERT_NE(entry, nullptr);
  const SimScale scale{256, 256};
  std::unique_ptr<FlashDevice> device = entry->make(scale, 0x5eedu);

  // Wear the device with several full overwrites of random 4 KiB writes
  // (the attack pattern), leaving a realistically fragmented FTL.
  const uint64_t capacity = device->CapacityBytes();
  std::mt19937_64 rng(99);
  const uint64_t request = 4 * kKiB;
  const uint64_t to_write = 4 * capacity;
  uint64_t written = 0;
  while (written < to_write) {
    const uint64_t slot = rng() % (capacity / request);
    const IoRequest req{IoKind::kWrite, slot * request, request};
    Result<IoCompletion> done = device->Submit(req);
    if (!done.ok()) {
      break;  // bricked: still a valid "worn" device to snapshot
    }
    written += request;
  }
  ASSERT_GT(written, capacity);

  SnapshotWriter w;
  device->SaveState(w);
  const std::vector<uint8_t> packed = PackZeroRuns(w.buffer());

  constexpr size_t kRawBudget = 256 * 1024;
  constexpr size_t kPackedBudget = 160 * 1024;
  EXPECT_LE(w.buffer().size(), kRawBudget)
      << "raw snapshot " << w.buffer().size() << " bytes";
  EXPECT_LE(packed.size(), kPackedBudget)
      << "packed snapshot " << packed.size() << " bytes";

  // And the packed form must actually round-trip to the same device state.
  std::vector<uint8_t> raw;
  ASSERT_TRUE(UnpackZeroRuns(packed, &raw).ok());
  EXPECT_EQ(raw, w.buffer());
}

}  // namespace
}  // namespace flashsim
