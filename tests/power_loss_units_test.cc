// Unit tests for the power-loss primitives (DESIGN.md §11): FaultPlan /
// PowerRail trigger semantics, the NAND torn-program / torn-erase states,
// and PageMapFtl's OOB-based mount recovery. The randomized end-to-end
// sweeps live in crash_recovery_property_test.cc; these pin down the
// building blocks one at a time.

#include <gtest/gtest.h>

#include "src/simcore/clock.h"
#include "src/simcore/fault_plan.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

// Standalone block for unit tests: Init()s `planes` for one block and views
// it at base 0.
NandBlock MakeTestBlock(PageMetaPlanes& planes, uint32_t pages_per_block) {
  planes.Init(pages_per_block);
  return NandBlock(planes, 0, pages_per_block);
}

// --- FaultPlan / PowerRail --------------------------------------------------

TEST(FaultPlanTest, AtOpCountFiresOnExactlyTheNthOp) {
  PowerRail rail;
  rail.Arm(FaultPlan::AtOpCount(3));
  EXPECT_FALSE(rail.OnDestructiveOp());
  EXPECT_FALSE(rail.OnDestructiveOp());
  EXPECT_TRUE(rail.powered());
  EXPECT_TRUE(rail.OnDestructiveOp());
  EXPECT_FALSE(rail.powered());
  EXPECT_EQ(rail.cuts_delivered(), 1u);
  EXPECT_EQ(rail.destructive_ops(), 3u);
  // Unpowered ops keep counting but never fire again.
  EXPECT_FALSE(rail.OnDestructiveOp());
  EXPECT_EQ(rail.destructive_ops(), 4u);
}

TEST(FaultPlanTest, ArmRestartsTheOpWindow) {
  PowerRail rail;
  rail.Arm(FaultPlan::AtOpCount(2));
  EXPECT_FALSE(rail.OnDestructiveOp());
  // Re-arm after one op: the countdown starts over from here.
  rail.Arm(FaultPlan::AtOpCount(2));
  EXPECT_FALSE(rail.OnDestructiveOp());
  EXPECT_TRUE(rail.OnDestructiveOp());
  EXPECT_EQ(rail.destructive_ops(), 3u);
}

TEST(FaultPlanTest, DisarmedRailNeverFires) {
  PowerRail rail;
  rail.Arm(FaultPlan::AtOpCount(1));
  rail.Disarm();
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(rail.OnDestructiveOp());
  }
  EXPECT_TRUE(rail.powered());
  EXPECT_EQ(rail.cuts_delivered(), 0u);
}

TEST(FaultPlanTest, RestoreRepowersWithoutRearming) {
  PowerRail rail;
  rail.Arm(FaultPlan::AtOpCount(1));
  EXPECT_TRUE(rail.OnDestructiveOp());
  rail.Restore();
  EXPECT_TRUE(rail.powered());
  EXPECT_FALSE(rail.armed());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(rail.OnDestructiveOp());
  }
  EXPECT_EQ(rail.cuts_delivered(), 1u);
}

TEST(FaultPlanTest, AtTimeFiresOnFirstOpAtOrAfterInstant) {
  SimClock clock;
  PowerRail rail;
  rail.AttachClock(&clock);
  rail.Arm(FaultPlan::AtTime(SimTime(1000)));
  EXPECT_FALSE(rail.OnDestructiveOp());  // Now() == 0
  clock.Advance(SimDuration::Nanos(999));
  EXPECT_FALSE(rail.OnDestructiveOp());
  clock.Advance(SimDuration::Nanos(1));
  EXPECT_TRUE(rail.OnDestructiveOp());
  EXPECT_FALSE(rail.powered());
}

TEST(FaultPlanTest, RandomOpInWindowIsSeedDeterministicAndInRange) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultPlan a = FaultPlan::RandomOpInWindow(seed, 10, 50);
    const FaultPlan b = FaultPlan::RandomOpInWindow(seed, 10, 50);
    EXPECT_EQ(a.cut_after_ops, b.cut_after_ops) << "seed " << seed;
    EXPECT_GE(a.cut_after_ops, 10u);
    EXPECT_LE(a.cut_after_ops, 50u);
  }
  // Different seeds spread over the window (not all identical).
  const uint64_t first = FaultPlan::RandomOpInWindow(1, 1, 1000).cut_after_ops;
  bool varied = false;
  for (uint64_t seed = 2; seed <= 10 && !varied; ++seed) {
    varied = FaultPlan::RandomOpInWindow(seed, 1, 1000).cut_after_ops != first;
  }
  EXPECT_TRUE(varied);
}

// --- NAND torn states -------------------------------------------------------

TEST(NandTornTest, TornProgramConsumesPageAndReadsAsDataLoss) {
  PageMetaPlanes planes;
  NandBlock block = MakeTestBlock(planes, 8);
  ASSERT_TRUE(block.ProgramPage(0, /*tag=*/7, /*seq=*/1).ok());
  ASSERT_TRUE(block.ProgramTorn(1).ok());
  EXPECT_EQ(block.write_pointer(), 2u) << "torn program still consumes a page";
  EXPECT_TRUE(block.IsTorn(1));
  EXPECT_FALSE(block.IsTorn(0));
  EXPECT_EQ(block.ReadTag(1).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(block.PageSeq(1), 0u);
  // The in-order rule continues past the torn page.
  ASSERT_TRUE(block.ProgramPage(2, /*tag=*/9, /*seq=*/2).ok());
  EXPECT_EQ(block.ReadTag(2).value(), 9u);
  // An erase clears the torn state.
  ASSERT_TRUE(block.Erase().ok());
  EXPECT_FALSE(block.IsTorn(1));
  EXPECT_TRUE(block.IsErased());
}

TEST(NandTornTest, TornEraseLeavesBlockUnusableUntilCompletedErase) {
  PageMetaPlanes planes;
  NandBlock block = MakeTestBlock(planes, 8);
  ASSERT_TRUE(block.ProgramPage(0, /*tag=*/3, /*seq=*/1).ok());
  ASSERT_TRUE(block.ProgramPage(1, /*tag=*/4, /*seq=*/2).ok());
  const uint32_t pe_before = block.pe_cycles();
  block.TornErase();
  EXPECT_TRUE(block.erase_torn());
  EXPECT_FALSE(block.IsErased());
  EXPECT_EQ(block.pe_cycles(), pe_before) << "interrupted erase charges no P/E";
  EXPECT_TRUE(block.IsTorn(0));
  EXPECT_TRUE(block.IsTorn(1));
  EXPECT_FALSE(block.ProgramPage(block.write_pointer(), 5).ok())
      << "no programs until a completed erase";
  ASSERT_TRUE(block.Erase().ok());
  EXPECT_EQ(block.pe_cycles(), pe_before + 1);
  EXPECT_TRUE(block.IsErased());
  EXPECT_TRUE(block.ProgramPage(0, /*tag=*/6, /*seq=*/3).ok());
}

TEST(NandTornTest, ChipCutTearsInFlightProgramAndKillsLaterOps) {
  NandChip chip(TinyChipConfig(), /*seed=*/1);
  PowerRail rail;
  chip.AttachPowerRail(&rail);
  rail.Arm(FaultPlan::AtOpCount(2));

  PhysPageAddr p0{/*block=*/0, /*page=*/0};
  PhysPageAddr p1{/*block=*/0, /*page=*/1};
  ASSERT_TRUE(chip.ProgramPage(p0, /*tag=*/11).ok());
  EXPECT_EQ(chip.ProgramPage(p1, /*tag=*/12).status().code(),
            StatusCode::kPowerLoss);
  EXPECT_TRUE(chip.block(0).IsTorn(1)) << "in-flight page left torn";

  // Everything fails until power is restored — including reads.
  EXPECT_EQ(chip.ProgramPage(PhysPageAddr{0, 2}, 13).status().code(),
            StatusCode::kPowerLoss);
  EXPECT_EQ(chip.EraseBlock(1).status().code(), StatusCode::kPowerLoss);
  EXPECT_EQ(chip.ReadPage(p0).status().code(), StatusCode::kPowerLoss);

  rail.Restore();
  EXPECT_EQ(chip.ReadPage(p0).value().tag, 11u);
  EXPECT_EQ(chip.ReadPage(p1).status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(chip.ProgramPage(PhysPageAddr{0, 2}, 13).ok())
      << "in-order rule resumes past the torn page";
}

TEST(NandTornTest, ChipCutDuringEraseLeavesEraseTornBlock) {
  NandChip chip(TinyChipConfig(), /*seed=*/1);
  ASSERT_TRUE(chip.ProgramPage(PhysPageAddr{0, 0}, /*tag=*/1).ok());
  PowerRail rail;
  chip.AttachPowerRail(&rail);
  rail.Arm(FaultPlan::AtOpCount(1));
  EXPECT_EQ(chip.EraseBlock(0).status().code(), StatusCode::kPowerLoss);
  EXPECT_TRUE(chip.block(0).erase_torn());
  rail.Restore();
  ASSERT_TRUE(chip.EraseBlock(0).ok());
  EXPECT_TRUE(chip.block(0).IsErased());
}

// --- PageMapFtl mount recovery ---------------------------------------------

TEST(FtlMountRecoveryTest, RecoversAckedPagesDiscardsTornIgnoresStale) {
  std::unique_ptr<PageMapFtl> ftl = MakeTinyFtl(/*seed=*/7);
  constexpr uint64_t kAcked = 10;
  for (uint64_t lpn = 0; lpn < kAcked; ++lpn) {
    ASSERT_TRUE(ftl->WritePage(lpn).ok());
  }
  // Overwrites leave stale lower-sequence copies on the NAND.
  ASSERT_TRUE(ftl->WritePage(5).ok());
  ASSERT_TRUE(ftl->WritePage(5).ok());

  PowerRail rail;
  ftl->AttachPowerRail(&rail);
  rail.Arm(FaultPlan::AtOpCount(1));
  EXPECT_EQ(ftl->WritePage(kAcked).status().code(), StatusCode::kPowerLoss);
  EXPECT_EQ(ftl->WritePage(kAcked + 1).status().code(), StatusCode::kPowerLoss);
  rail.Restore();

  Result<RecoveryReport> rep = ftl->Mount();
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().mapped_pages_recovered, kAcked);
  EXPECT_GE(rep.value().torn_pages_discarded, 1u);
  EXPECT_GE(rep.value().stale_pages_ignored, 2u);
  EXPECT_TRUE(ftl->ValidateInvariants().ok());
  for (uint64_t lpn = 0; lpn < kAcked; ++lpn) {
    EXPECT_TRUE(ftl->ReadPage(lpn).ok()) << "acked lpn " << lpn;
  }
  // The device keeps working after recovery, including the cut-off LPN.
  EXPECT_TRUE(ftl->WritePage(kAcked).ok());
  EXPECT_TRUE(ftl->ReadPage(kAcked).ok());
}

TEST(FtlMountRecoveryTest, MountIsIdempotentWithoutACut) {
  std::unique_ptr<PageMapFtl> ftl = MakeTinyFtl(/*seed=*/7);
  for (uint64_t lpn = 0; lpn < 6; ++lpn) {
    ASSERT_TRUE(ftl->WritePage(lpn).ok());
  }
  Result<RecoveryReport> first = ftl->Mount();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().mapped_pages_recovered, 6u);
  EXPECT_EQ(first.value().torn_pages_discarded, 0u);
  Result<RecoveryReport> second = ftl->Mount();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().mapped_pages_recovered, 6u);
  EXPECT_TRUE(ftl->ValidateInvariants().ok());
  for (uint64_t lpn = 0; lpn < 6; ++lpn) {
    EXPECT_TRUE(ftl->ReadPage(lpn).ok());
  }
}

}  // namespace
}  // namespace flashsim
