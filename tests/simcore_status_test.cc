#include "src/simcore/status.h"

#include <gtest/gtest.h>

namespace flashsim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = DataLossError("uncorrectable");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "uncorrectable");
  EXPECT_EQ(s.ToString(), "DATA_LOSS: uncorrectable");
}

TEST(StatusTest, AllFactoryFunctions) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(PermissionDeniedError("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STRNE(StatusCodeName(StatusCode::kDataLoss),
               StatusCodeName(StatusCode::kNotFound));
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == DataLossError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Passthrough(Status input) {
  FLASHSIM_RETURN_IF_ERROR(input);
  return InternalError("reached end");
}

TEST(ReturnIfErrorTest, PropagatesErrorsOnly) {
  EXPECT_EQ(Passthrough(NotFoundError("x")).code(), StatusCode::kNotFound);
  EXPECT_EQ(Passthrough(Status::Ok()).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace flashsim
