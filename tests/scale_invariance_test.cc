// The sim-scale substitution argument (DESIGN.md §6), verified: dividing
// capacity and endurance together must not change the *re-scaled* wear
// figures, because write amplification depends on ratios, not absolute
// counts. If this property broke, every scaled bench number would be suspect.

#include <gtest/gtest.h>

#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/wearout_experiment.h"

namespace flashsim {
namespace {

struct ScaledLevel {
  double gib_per_level_full = 0.0;  // re-scaled to full-device terms
  double hours_per_level_full = 0.0;
  double wa = 0.0;
};

ScaledLevel MeasureLevels(SimScale scale, uint64_t seed) {
  auto device = MakeEmmc8(scale, seed);
  WearWorkloadConfig w;
  w.footprint_bytes = (400 * kMiB) / scale.capacity_div;
  WearOutExperiment exp(*device, w);
  const WearRunOutcome out = exp.Run(4, 1 * kTiB);
  ScaledLevel result;
  // Average levels 2..4 (skip wear-in).
  int counted = 0;
  for (size_t i = 1; i < out.transitions.size(); ++i) {
    result.gib_per_level_full += static_cast<double>(out.transitions[i].host_bytes) *
                                 scale.VolumeFactor() / kGiB;
    result.hours_per_level_full += out.transitions[i].hours * scale.VolumeFactor();
    result.wa += out.transitions[i].write_amplification;
    ++counted;
  }
  EXPECT_GT(counted, 0);
  result.gib_per_level_full /= counted;
  result.hours_per_level_full /= counted;
  result.wa /= counted;
  return result;
}

TEST(ScaleInvarianceTest, GiBPerLevelStableAcrossScales) {
  const ScaledLevel coarse = MeasureLevels(SimScale{32, 32}, 3);
  const ScaledLevel fine = MeasureLevels(SimScale{16, 16}, 3);
  EXPECT_NEAR(coarse.gib_per_level_full / fine.gib_per_level_full, 1.0, 0.10)
      << "coarse=" << coarse.gib_per_level_full << " fine=" << fine.gib_per_level_full;
}

TEST(ScaleInvarianceTest, HoursPerLevelStableAcrossScales) {
  const ScaledLevel coarse = MeasureLevels(SimScale{32, 32}, 3);
  const ScaledLevel fine = MeasureLevels(SimScale{16, 16}, 3);
  EXPECT_NEAR(coarse.hours_per_level_full / fine.hours_per_level_full, 1.0, 0.10);
}

TEST(ScaleInvarianceTest, WriteAmplificationStableAcrossScales) {
  const ScaledLevel coarse = MeasureLevels(SimScale{32, 32}, 3);
  const ScaledLevel fine = MeasureLevels(SimScale{16, 16}, 3);
  EXPECT_NEAR(coarse.wa, fine.wa, 0.15);
}

TEST(ScaleInvarianceTest, SeedDoesNotMoveTheNumbers) {
  // The result is a physical property, not an RNG artifact.
  const ScaledLevel a = MeasureLevels(SimScale{32, 32}, 3);
  const ScaledLevel b = MeasureLevels(SimScale{32, 32}, 1234);
  EXPECT_NEAR(a.gib_per_level_full / b.gib_per_level_full, 1.0, 0.05);
}

}  // namespace
}  // namespace flashsim
