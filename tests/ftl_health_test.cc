#include "src/ftl/health.h"

#include <gtest/gtest.h>

namespace flashsim {
namespace {

TEST(HealthTest, LevelBoundaries) {
  EXPECT_EQ(LifeFractionToLevel(0.0), 1u);
  EXPECT_EQ(LifeFractionToLevel(0.0999), 1u);
  EXPECT_EQ(LifeFractionToLevel(0.10), 2u);
  EXPECT_EQ(LifeFractionToLevel(0.55), 6u);
  EXPECT_EQ(LifeFractionToLevel(0.9999), 10u);
  EXPECT_EQ(LifeFractionToLevel(1.0), 11u);
}

TEST(HealthTest, LevelClampsAtEleven) {
  EXPECT_EQ(LifeFractionToLevel(1.5), 11u);
  EXPECT_EQ(LifeFractionToLevel(100.0), 11u);
}

TEST(HealthTest, NegativeFractionIsLevelOne) {
  EXPECT_EQ(LifeFractionToLevel(-0.5), 1u);
}

// Parameterized: every level n covers exactly [(n-1)*10%, n*10%).
class LevelSemantics : public ::testing::TestWithParam<uint32_t> {};

TEST_P(LevelSemantics, JedecWindow) {
  const uint32_t level = GetParam();
  const double low = (level - 1) * 0.10;
  const double high = level * 0.10;
  EXPECT_EQ(LifeFractionToLevel(low), level);
  EXPECT_EQ(LifeFractionToLevel(high - 1e-9), level);
  EXPECT_EQ(LifeFractionToLevel(high), level + 1);
}

INSTANTIATE_TEST_SUITE_P(Levels, LevelSemantics,
                         ::testing::Values(1u, 2u, 5u, 9u, 10u));

TEST(HealthTest, PreEolThresholds) {
  EXPECT_EQ(ComputePreEol(0, 100), PreEolInfo::kNormal);
  EXPECT_EQ(ComputePreEol(79, 100), PreEolInfo::kNormal);
  EXPECT_EQ(ComputePreEol(80, 100), PreEolInfo::kWarning);
  EXPECT_EQ(ComputePreEol(97, 100), PreEolInfo::kWarning);
  EXPECT_EQ(ComputePreEol(98, 100), PreEolInfo::kUrgent);
  EXPECT_EQ(ComputePreEol(100, 100), PreEolInfo::kUrgent);
}

TEST(HealthTest, PreEolUndefinedWithoutSpares) {
  EXPECT_EQ(ComputePreEol(0, 0), PreEolInfo::kNotDefined);
}

TEST(HealthTest, PreEolNames) {
  EXPECT_STREQ(PreEolInfoName(PreEolInfo::kNormal), "NORMAL");
  EXPECT_STREQ(PreEolInfoName(PreEolInfo::kUrgent), "URGENT");
}

TEST(HealthTest, ReportToString) {
  HealthReport r;
  r.life_time_est_a = 3;
  r.life_time_est_b = 1;
  r.pre_eol = PreEolInfo::kNormal;
  const std::string s = r.ToString();
  EXPECT_NE(s.find("A=3"), std::string::npos);
  EXPECT_NE(s.find("B=1"), std::string::npos);
  EXPECT_NE(s.find("NORMAL"), std::string::npos);

  HealthReport unsupported;
  unsupported.supported = false;
  EXPECT_EQ(unsupported.ToString(), "health reporting unsupported");
}

}  // namespace
}  // namespace flashsim
