#include "src/workload/trace_workload.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/blockdev/iotrace.h"
#include "src/simcore/units.h"
#include "src/workload/driver.h"
#include "src/workload/generators.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

TraceEntry MakeEntry(uint64_t offset, uint64_t length, IoKind kind = IoKind::kWrite,
                     int64_t issue_ns = 0, int64_t service_ns = 1000) {
  TraceEntry entry;
  entry.kind = kind;
  entry.offset = offset;
  entry.length = length;
  entry.issue_time = SimTime() + SimDuration::Nanos(issue_ns);
  entry.service_time = SimDuration::Nanos(service_ns);
  return entry;
}

// The round-trip the issue pins down: record a synthetic workload on one
// device, replay the capture on a fresh device of the same type and seed,
// and expect identical byte counts and identical wear.
TEST(TraceRoundTripTest, ReplayMatchesCaptureBytesAndWear) {
  SyntheticWorkloadConfig config;
  config.pattern = AccessPattern::kRandom;
  config.request_bytes = 4096;
  config.total_bytes = 4 * kMiB;
  SyntheticWorkload source(config);

  std::unique_ptr<FlashDevice> recorded_on = MakeTinyDevice(/*seed=*/5);
  TraceRecorder trace;
  recorded_on->SetTraceRecorder(&trace);
  WorkloadDriveOptions opts;
  opts.seed = 11;
  const WorkloadRunResult capture = RunWorkloadOnDevice(source, *recorded_on, opts);
  recorded_on->SetTraceRecorder(nullptr);
  ASSERT_TRUE(capture.status.ok());
  ASSERT_EQ(capture.bytes_written, 4 * kMiB);
  ASSERT_EQ(trace.dropped(), 0u);

  TraceWorkload replay = TraceWorkload::FromRecorder(trace);
  std::unique_ptr<FlashDevice> replayed_on = MakeTinyDevice(/*seed=*/5);
  const WorkloadRunResult result = RunWorkloadOnDevice(replay, *replayed_on, opts);
  ASSERT_TRUE(result.status.ok());

  // Identical byte counts...
  EXPECT_EQ(result.bytes_written, capture.bytes_written);
  EXPECT_EQ(result.bytes_read, capture.bytes_read);
  EXPECT_EQ(result.requests, capture.requests);

  // ...and identical wear: same NAND traffic, same erases, same health.
  const FtlStats recorded_stats = recorded_on->ftl().Stats();
  const FtlStats replayed_stats = replayed_on->ftl().Stats();
  EXPECT_EQ(replayed_stats.host_pages_written, recorded_stats.host_pages_written);
  EXPECT_EQ(replayed_stats.nand_pages_written, recorded_stats.nand_pages_written);
  EXPECT_EQ(replayed_stats.erases, recorded_stats.erases);
  EXPECT_DOUBLE_EQ(replayed_stats.WriteAmplification(),
                   recorded_stats.WriteAmplification());
  EXPECT_EQ(replayed_on->QueryHealth().life_time_est_a,
            recorded_on->QueryHealth().life_time_est_a);
  EXPECT_EQ(replayed_on->QueryHealth().life_time_est_b,
            recorded_on->QueryHealth().life_time_est_b);

  // The replay target is byte-for-byte the capture device, so service time
  // matches too.
  EXPECT_EQ(result.io_time.nanos(), capture.io_time.nanos());
}

TEST(TraceWorkloadTest, FromRecorderPreservesEntries) {
  std::vector<TraceEntry> entries = {MakeEntry(0, 4096), MakeEntry(8192, 4096)};
  TraceWorkload workload(entries, "t");
  EXPECT_EQ(workload.entry_count(), 2u);
  EXPECT_EQ(workload.RecordedIoTime().nanos(), 2000);
  EXPECT_FALSE(workload.MayRead());

  entries.push_back(MakeEntry(0, 4096, IoKind::kRead));
  TraceWorkload with_read(entries, "t");
  EXPECT_TRUE(with_read.MayRead());
}

TEST(TraceWorkloadTest, PreservesInterArrivalGaps) {
  // Second request issued 1 ms after the first completes (issue 0 + service
  // 1000 ns -> completion at 1000 ns; next issue at 1001000 ns).
  std::vector<TraceEntry> entries = {
      MakeEntry(0, 4096, IoKind::kWrite, /*issue_ns=*/0, /*service_ns=*/1000),
      MakeEntry(4096, 4096, IoKind::kWrite, /*issue_ns=*/1001000),
  };
  TraceWorkload workload(entries, "t");
  WorkloadOp op;
  ASSERT_TRUE(workload.Next(1 * kMiB, &op));
  EXPECT_EQ(op.pre_idle.nanos(), 0);
  ASSERT_TRUE(workload.Next(1 * kMiB, &op));
  EXPECT_EQ(op.pre_idle.nanos(), 1000000);
}

TEST(TraceWorkloadTest, WrapsOffsetsToTarget) {
  std::vector<TraceEntry> entries = {MakeEntry(10 * kMiB, 4096)};
  TraceWorkload workload(entries, "t");
  WorkloadOp op;
  ASSERT_TRUE(workload.Next(1 * kMiB, &op));
  EXPECT_LE(op.offset + op.length, 1 * kMiB);
}

TEST(TraceWorkloadTest, SkipsEntriesLargerThanTarget) {
  std::vector<TraceEntry> entries = {MakeEntry(0, 2 * kMiB), MakeEntry(0, 4096)};
  TraceWorkload workload(entries, "t");
  WorkloadOp op;
  ASSERT_TRUE(workload.Next(1 * kMiB, &op));
  EXPECT_EQ(op.length, 4096u);
  EXPECT_FALSE(workload.Next(1 * kMiB, &op));
}

TEST(TraceWorkloadTest, ResetRewinds) {
  std::vector<TraceEntry> entries = {MakeEntry(0, 4096), MakeEntry(4096, 4096)};
  TraceWorkload workload(entries, "t");
  WorkloadOp op;
  while (workload.Next(1 * kMiB, &op)) {
  }
  workload.Reset(/*seed=*/0);
  ASSERT_TRUE(workload.Next(1 * kMiB, &op));
  EXPECT_EQ(op.offset, 0u);
}

}  // namespace
}  // namespace flashsim
