// ScratchBuffer semantics plus the zero-steady-state-allocation invariant
// (DESIGN.md §12): after a warm-up pass, the bulk I/O paths must not
// reallocate their per-op scratch buffers, no matter how many more
// same-shaped operations run.

#include <gtest/gtest.h>

#include <vector>

#include "src/blockdev/block_device.h"
#include "src/simcore/scratch.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

TEST(ScratchBufferTest, CountsGrowthOnlyWhenCapacityIncreases) {
  ScratchBuffer<uint64_t> buf;
  EXPECT_EQ(buf.grow_count(), 0u);

  uint64_t* p = buf.Acquire(16);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(buf.grow_count(), 1u);

  // Same or smaller size: no new allocation.
  buf.Acquire(16);
  buf.Acquire(4);
  buf.AcquireZeroed(16);
  EXPECT_EQ(buf.grow_count(), 1u);

  // Larger size: exactly one more.
  buf.Acquire(17);
  EXPECT_EQ(buf.grow_count(), 2u);

  // Geometric growth: capacity doubled to 32, so 32 still fits.
  buf.Acquire(32);
  EXPECT_EQ(buf.grow_count(), 2u);
}

TEST(ScratchBufferTest, AcquireZeroedValueInitializes) {
  ScratchBuffer<int> buf;
  int* p = buf.Acquire(8);
  for (int k = 0; k < 8; ++k) {
    p[k] = k + 1;
  }
  p = buf.AcquireZeroed(8);
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(p[k], 0);
  }
}

TEST(ScratchBufferTest, DetectsPushBackGrowth) {
  ScratchBuffer<uint64_t> buf;
  std::vector<uint64_t>& vec = buf.AcquireEmpty();
  for (uint64_t k = 0; k < 100; ++k) {
    vec.push_back(k);
  }
  // push_back growth is visible immediately through grow_count()...
  EXPECT_GE(buf.grow_count(), 1u);
  const uint64_t after_fill = buf.grow_count();

  // ...and refilling to the same size within the retained capacity is free.
  std::vector<uint64_t>& again = buf.AcquireEmpty();
  EXPECT_EQ(again.size(), 0u);
  for (uint64_t k = 0; k < 100; ++k) {
    again.push_back(k);
  }
  EXPECT_EQ(buf.grow_count(), after_fill);
}

// Drives `batches` groups of `group` page-sized writes through SubmitBatch.
void DriveBatches(FlashDevice& device, uint64_t seed, int batches, int group) {
  const uint32_t page = device.PageSizeBytes();
  const uint64_t pages = device.CapacityBytes() / page;
  uint64_t x = seed;
  std::vector<IoRequest> reqs(group);
  for (int b = 0; b < batches; ++b) {
    for (int r = 0; r < group; ++r) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      reqs[r] = IoRequest{IoKind::kWrite, ((x >> 33) % pages) * page, page};
    }
    BatchCompletion done = device.SubmitBatch(reqs.data(), reqs.size());
    ASSERT_TRUE(done.status.ok());
  }
}

TEST(ScratchSteadyStateTest, DeviceBatchPathStopsAllocatingAfterWarmup) {
  auto device = MakeTinyDevice(/*seed=*/7);
  DriveBatches(*device, 7, /*batches=*/4, /*group=*/64);
  const uint64_t warm = device->ScratchGrowCount();
  EXPECT_GE(warm, 1u);  // the warm-up itself had to allocate

  DriveBatches(*device, 99, /*batches=*/64, /*group=*/64);
  EXPECT_EQ(device->ScratchGrowCount(), warm);

  // Smaller batches must also be free.
  DriveBatches(*device, 123, /*batches=*/32, /*group=*/8);
  EXPECT_EQ(device->ScratchGrowCount(), warm);
}

TEST(ScratchSteadyStateTest, PageMapWritePagesStopsAllocatingAfterWarmup) {
  auto ftl = MakeTinyFtl(/*seed=*/3);
  const uint64_t pages = ftl->LogicalPageCount();
  ASSERT_TRUE(ftl->WritePages(0, 64).ok());
  const uint64_t warm = ftl->ScratchGrowCount();
  EXPECT_GE(warm, 1u);

  uint64_t x = 5;
  for (int k = 0; k < 200; ++k) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t lpn = (x >> 33) % (pages - 64);
    ASSERT_TRUE(ftl->WritePages(lpn, 1 + (x % 64)).ok());
  }
  EXPECT_EQ(ftl->ScratchGrowCount(), warm);
}

TEST(ScratchSteadyStateTest, HybridWritePagesStopsAllocatingAfterWarmup) {
  auto ftl = MakeTinyHybrid(/*seed=*/3);
  const uint64_t pages = ftl->LogicalPageCount();
  ASSERT_TRUE(ftl->WritePages(0, 64).ok());
  const uint64_t warm = ftl->ScratchGrowCount();
  EXPECT_GE(warm, 1u);

  uint64_t x = 11;
  for (int k = 0; k < 200; ++k) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t lpn = (x >> 33) % (pages - 64);
    ASSERT_TRUE(ftl->WritePages(lpn, 1 + (x % 64)).ok());
  }
  EXPECT_EQ(ftl->ScratchGrowCount(), warm);
}

}  // namespace
}  // namespace flashsim
